// Package server implements obdreld's JSON-over-HTTP reliability
// query service: the /v1 API over an analyzer registry (a pipeline
// stage cache with cancellable singleflight coalescing), with a
// bounded concurrency limiter, per-request timeouts, structured
// request logging, and a stdlib-only Prometheus-text /metrics
// endpoint.
//
// The serving model: an Analyzer is an immutable, fully characterized
// chip that is expensive to build (power/thermal fixed point, PCA,
// BLOD — hundreds of milliseconds) and microseconds to query (hybrid
// tables). The registry therefore memoizes analyzers by canonical
// (design, config) identity and coalesces concurrent builds, so a
// traffic burst for one configuration costs one characterization and
// N-1 cheap waits. Underneath, the library's stage graph caches the
// individual artifacts (thermal solve, PCA, BLOD, …), so even a
// registry miss rebuilds only the stages whose inputs changed; and
// the request context threads through every stage, so a request that
// times out cancels the computation it started unless another request
// still wants it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"obdrel"
	"obdrel/internal/artifact"
	"obdrel/internal/fault"
	"obdrel/internal/obd"
	"obdrel/internal/obs"
	"obdrel/internal/pipeline"
)

// Options configure the service.
type Options struct {
	// MaxAnalyzers bounds the registry LRU (default 32).
	MaxAnalyzers int
	// MaxConcurrent bounds simultaneously served /v1 requests;
	// excess requests are rejected 429 (default 4×GOMAXPROCS).
	MaxConcurrent int
	// RequestTimeout is the per-request deadline (default 30s);
	// expiry answers 504 while any in-flight analyzer build finishes
	// in the background for the next request.
	RequestTimeout time.Duration
	// Workers is the Config.Workers applied to every build (0 =
	// GOMAXPROCS).
	Workers int
	// TableDir is the Config.TableDir applied to every build: hybrid
	// lookup tables are spilled there on first build and served from a
	// shared read-only mapping afterwards — across requests and across
	// daemon restarts. Empty keeps the tables in-process only.
	TableDir string
	// AccessLog receives one JSON line per request (nil = discard).
	AccessLog io.Writer
	// Build overrides the analyzer factory (tests); nil uses
	// obdrel.NewAnalyzerCtx, so request deadlines cancel in-flight
	// stage builds.
	Build BuildFunc

	// Tracer overrides the request tracer; nil constructs one with
	// TraceBuffer capacity (unless DisableTracing).
	Tracer *obs.Tracer
	// DisableTracing turns per-request tracing off entirely: requests
	// run with an untraced context and the instrumented call sites
	// cost a nil check each.
	DisableTracing bool
	// TraceBuffer bounds the /debug/traces ring (default 128).
	TraceBuffer int
	// TraceJSONL, when non-nil, receives every finalized trace as one
	// JSON line.
	TraceJSONL io.Writer
	// SlowRequest, when positive, logs a warning (with the trace id)
	// for any request slower than the threshold.
	SlowRequest time.Duration

	// RetryAttempts bounds analyzer-build attempts on Transient
	// failures (default 3; 1 disables retry). RetryBase is the first
	// backoff delay (default 25ms).
	RetryAttempts int
	RetryBase     time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// per-fingerprint circuit (default 5; negative disables the
	// breaker). BreakerOpenFor is the open TTL before a half-open
	// probe (default 5s).
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// MaxStale is the serve-stale window: a failed rebuild with a
	// last-good analyzer younger than this serves it with a staleness
	// annotation instead of erroring (default 15m; negative disables).
	MaxStale time.Duration
	// QueueDepth enables the deadline-aware admission controller: up
	// to QueueDepth saturated requests wait for a slot instead of
	// getting an instant 429, but a request whose predicted wait
	// exceeds its deadline is rejected 503 immediately. 0 (default)
	// keeps the legacy instant-429 behaviour.
	QueueDepth int
	// BatchWindow is the number of /v1/batch items planned, evaluated,
	// and held in memory at a time (default 256) — the unit of
	// streaming and the bound on per-request memory. BatchMaxItems
	// caps a single batch request's item count (default 10000).
	// BatchTimeout is the whole-stream deadline for /v1/batch (default
	// 5m): a batch is one admission slot doing thousands of queries,
	// so it gets its own budget instead of RequestTimeout.
	BatchWindow   int
	BatchMaxItems int
	BatchTimeout  time.Duration
	// FaultHeader honours per-request X-Fault injection specs — test
	// and staging builds only; never enable it on a public listener.
	FaultHeader bool

	// ArtifactDir enables the disk artifact tier: stage artifacts are
	// spilled there as sealed OBDA containers (atomic temp+rename)
	// and served back — checksum-verified — across restarts. Empty
	// disables the tier.
	ArtifactDir string
	// Peers is the static cluster membership: every node's base URL,
	// this node's included. Non-empty enables the peer cache-fill
	// tier and consistent-hash ownership of stage fingerprints.
	Peers []string
	// Self is this node's own base URL; required with Peers and must
	// appear in the list.
	Self string
	// PeerTimeout bounds one peer artifact fetch (default 2s).
	PeerTimeout time.Duration
	// JoinPeers enables dynamic membership: seed URLs this node
	// gossips with to discover the fleet (-join). Mutually exclusive
	// with Peers; requires Self. A first node may list only itself.
	JoinPeers []string
	// Lease is the dynamic-membership lease: a peer silent for half of
	// it turns suspect, for all of it dead (default 10s).
	Lease time.Duration
	// Replicas is the k-way placement factor in dynamic mode: every
	// artifact's replica set is the first k distinct ring successors,
	// builds push to the other members asynchronously, and owns() (the
	// warm/rebalance filter) means replica-set membership (default 2).
	Replicas int
	// WarmLimit bounds the anti-entropy startup sweep that loads this
	// node's owned artifacts from ArtifactDir into memory (default
	// 1024; negative disables the sweep). /readyz answers 503
	// "warming" until the sweep finishes.
	WarmLimit int
	// Stages overrides the stage-artifact cache (default: the
	// process-wide obdrel.Stages()). Cluster tests give each in-process
	// node its own cache so nodes do not share artifacts through the
	// process-wide one.
	Stages *pipeline.Cache

	// SLOs are the burn-rate objectives the node tracks (obdreld's
	// -slo flag, parsed by obs.ParseSLOSpec). Empty disables the
	// engine: /debug/slo answers an empty document and the
	// obdreld_slo_* families are absent.
	SLOs []obs.Objective
	// WideEvents, when non-nil, receives one canonical JSONL event per
	// sampled request (obdreld's -wide-events). Nil disables wide
	// events entirely; the disabled path is 0 allocs/op.
	WideEvents io.Writer
	// WideEventSample head-samples 1-in-N requests for wide events
	// (default 1 = every request). Requests that fail with a 5xx are
	// always emitted regardless of the draw.
	WideEventSample int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxAnalyzers <= 0 {
		out.MaxAnalyzers = 32
	}
	if out.MaxConcurrent <= 0 {
		out.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.Stages == nil {
		out.Stages = obdrel.Stages()
	}
	if out.Build == nil {
		// Default factory builds into this node's stage cache — the
		// hook that lets disk/peer artifact tiers (and per-node caches
		// in in-process cluster tests) feed analyzer construction.
		stages := out.Stages
		out.Build = func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
			return obdrel.NewAnalyzerCtxIn(ctx, stages, d, cfg)
		}
	}
	if out.AccessLog == nil {
		out.AccessLog = io.Discard
	}
	if out.Tracer == nil && !out.DisableTracing {
		out.Tracer = obs.NewTracer(obs.Options{RingSize: out.TraceBuffer, JSONL: out.TraceJSONL})
	}
	if out.DisableTracing {
		out.Tracer = nil
	}
	if out.RetryAttempts == 0 {
		out.RetryAttempts = 3
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 25 * time.Millisecond
	}
	if out.BreakerThreshold == 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerOpenFor <= 0 {
		out.BreakerOpenFor = 5 * time.Second
	}
	if out.MaxStale == 0 {
		out.MaxStale = 15 * time.Minute
	}
	if out.BatchWindow <= 0 {
		out.BatchWindow = 256
	}
	if out.BatchMaxItems <= 0 {
		out.BatchMaxItems = 10000
	}
	if out.BatchTimeout <= 0 {
		out.BatchTimeout = 5 * time.Minute
	}
	if out.PeerTimeout <= 0 {
		out.PeerTimeout = 2 * time.Second
	}
	if out.Lease <= 0 {
		out.Lease = 10 * time.Second
	}
	if out.Replicas <= 0 {
		out.Replicas = 2
	}
	if out.WarmLimit == 0 {
		out.WarmLimit = 1024
	}
	return out
}

// Server is the obdreld HTTP service.
type Server struct {
	opts    Options
	metrics *Metrics
	reg     *Registry
	designs map[string]*obdrel.Design
	order   []string
	sem     chan struct{}
	logger  *slog.Logger
	tracer  *obs.Tracer

	// stages is the node's stage-artifact cache (tiered when
	// ArtifactDir/Peers are set); cluster is nil outside cluster mode;
	// member is nil outside dynamic (-join) mode.
	stages  *pipeline.Cache
	cluster *cluster
	member  *membership

	// slo is the burn-rate engine (nil without objectives); wide is
	// the wide-event log (nil when disabled) — both nil-safe.
	slo  *obs.SLO
	wide *wideEventLog

	// draining gates new work during graceful shutdown; queueLen and
	// ewmaServiceNs drive the admission controller; faultSeq seeds
	// per-request X-Fault injectors that carry no seed of their own.
	draining      atomic.Bool
	queueLen      atomic.Int64
	ewmaServiceNs atomic.Int64
	faultSeq      atomic.Int64

	// Anti-entropy warm-up state, reported by /readyz: warming is
	// true from construction until the sweep (if any) finishes;
	// warmDone/warmTotal track progress; warmLoaded the artifacts
	// actually brought into memory. peerServes counts sealed
	// artifacts served to peers from /v1/artifact.
	warming    atomic.Bool
	warmDone   atomic.Int64
	warmTotal  atomic.Int64
	warmLoaded atomic.Int64
	peerServes atomic.Int64
}

// New returns a service over the built-in benchmark designs. It
// panics on invalid cluster options (Peers/Self); construction from
// user input should go through NewE, which reports the error instead.
func New(opts Options) *Server {
	s, err := NewE(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// NewE is New with error reporting: the only fallible part of
// construction is cluster membership validation, so a server without
// Peers never returns an error.
func NewE(opts Options) (*Server, error) {
	o := opts.withDefaults()
	m := NewMetrics()
	s := &Server{
		opts:    o,
		metrics: m,
		reg:     NewRegistry(o.MaxAnalyzers, o.Build, m),
		designs: map[string]*obdrel.Design{},
		sem:     make(chan struct{}, o.MaxConcurrent),
		logger:  slog.New(slog.NewJSONHandler(o.AccessLog, nil)),
		tracer:  o.Tracer,
		stages:  o.Stages,
		slo:     obs.NewSLO(o.SLOs),
		wide:    newWideEventLog(o.WideEvents, o.WideEventSample),
	}
	m.stageStats = func() []pipeline.StageStat {
		stats := s.stages.Snapshot()
		return append(stats, s.reg.Stats())
	}
	m.queueDepth = s.queueLen.Load
	m.draining = s.draining.Load
	m.artifact = s.artifactStats
	m.slo = s.slo.Report
	if o.RetryAttempts > 1 {
		s.reg.Cache().SetRetry(fault.Retry{Attempts: o.RetryAttempts, Base: o.RetryBase})
	}
	if o.BreakerThreshold > 0 {
		s.reg.Cache().SetBreaker(fault.NewBreaker(o.BreakerThreshold, o.BreakerOpenFor))
	}
	if o.MaxStale > 0 {
		s.reg.SetMaxStale(o.MaxStale)
	}
	for _, d := range obdrel.Benchmarks() {
		s.designs[d.Name] = d
		s.order = append(s.order, d.Name)
	}

	// Artifact tiers: the disk spill dir and, with a peer list, the
	// cluster cache-fill tier over it. -peers is the static seed mode;
	// -join the dynamic one — never both.
	if len(o.Peers) > 0 && len(o.JoinPeers) > 0 {
		return nil, fmt.Errorf("cluster: -peers (static) and -join (dynamic) are mutually exclusive")
	}
	if len(o.Peers) > 0 {
		cl, err := newCluster(o.Self, o.Peers, o.PeerTimeout)
		if err != nil {
			return nil, err
		}
		s.cluster = cl
	} else if len(o.JoinPeers) > 0 {
		cl, err := newDynamicCluster(o.Self, o.Replicas, o.PeerTimeout)
		if err != nil {
			return nil, err
		}
		s.cluster = cl
	}
	if o.ArtifactDir != "" || s.cluster != nil {
		t := pipeline.Tiers{Dir: o.ArtifactDir}
		if s.cluster != nil {
			t.Fetch = s.cluster.fetch
		}
		if s.cluster != nil && s.cluster.dynamic && o.Replicas > 1 {
			// The hook reads s.member at call time because the
			// replicator is constructed by startMembership, after the
			// tier configuration is installed.
			t.Replicate = func(stage, key string, sealed []byte) {
				if m := s.member; m != nil {
					m.repl.enqueue(stage, key, sealed)
				}
			}
		}
		s.stages.SetTiers(t)
	}
	s.startWarm()
	if s.cluster != nil && s.cluster.dynamic {
		s.startMembership(o.JoinPeers, o.Lease)
	}
	return s, nil
}

// startWarm launches the anti-entropy sweep: load this node's owned
// artifacts (every artifact, outside cluster mode) from the disk tier
// into memory, bounded by WarmLimit, so a restarted node rejoins the
// cluster already holding what the ring says it should. /readyz
// reports "warming" until the sweep finishes.
func (s *Server) startWarm() {
	o := s.opts
	if o.ArtifactDir == "" || o.WarmLimit < 0 {
		return
	}
	var owns func(stage, key string) bool
	if s.cluster != nil {
		owns = s.cluster.owns
	}
	s.warming.Store(true)
	go func() {
		defer s.warming.Store(false)
		ws := s.stages.WarmFromDisk(context.Background(), owns, o.WarmLimit,
			func(done, total int) {
				s.warmDone.Store(int64(done))
				s.warmTotal.Store(int64(total))
			})
		s.warmLoaded.Store(int64(ws.Loaded))
		if ws.Loaded+ws.Rejected > 0 {
			s.logger.Info("artifact warm sweep",
				"loaded", ws.Loaded, "skipped", ws.Skipped, "rejected", ws.Rejected)
		}
	}()
}

// Metrics exposes the server's counters (the daemon logs a summary on
// shutdown).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the request tracer (nil when tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/v1/designs", s.instrument("/v1/designs", s.handleDesigns, http.MethodGet))
	mux.Handle("/v1/lifetime", s.instrument("/v1/lifetime", s.handleLifetime, http.MethodGet, http.MethodPost))
	mux.Handle("/v1/failureprob", s.instrument("/v1/failureprob", s.handleFailureProb, http.MethodGet, http.MethodPost))
	mux.Handle("/v1/maxvdd", s.instrument("/v1/maxvdd", s.handleMaxVDD, http.MethodGet, http.MethodPost))
	mux.Handle("/v1/blocks", s.instrument("/v1/blocks", s.handleBlocks, http.MethodGet, http.MethodPost))
	mux.Handle("/v1/batch", s.instrumentBatch("/v1/batch"))
	mux.HandleFunc("/v1/artifact/", s.handleArtifact)
	mux.HandleFunc("/v1/cluster/stats", s.handleClusterStats)
	mux.HandleFunc("/v1/cluster/status", s.handleClusterStatus)
	mux.HandleFunc("/v1/cluster/keys", s.handleClusterKeys)
	if s.member != nil {
		mux.HandleFunc("/v1/cluster/join", s.handleClusterJoin)
	}
	for _, route := range []string{
		"/healthz", "/readyz", "/metrics", "/v1/designs", "/v1/lifetime",
		"/v1/failureprob", "/v1/maxvdd", "/v1/blocks", "/v1/batch",
		"/v1/artifact", "/v1/cluster/stats", "/v1/cluster/status",
		"/v1/cluster/keys", "/v1/cluster/join",
	} {
		s.metrics.RegisterRoute(route)
	}
	// Catch-all: unknown paths answer 404 and are observed under the
	// "other" route label, so scanners cannot grow /metrics.
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	writeJSON(w, http.StatusNotFound, map[string]any{
		"error": fmt.Sprintf("no route %s (see README: /healthz, /metrics, /v1/*)", r.URL.Path),
	})
	s.metrics.ObserveRequest(r.URL.Path, http.StatusNotFound, time.Since(start))
}

// DebugHandler returns the diagnostics surface served on the separate
// -debug-addr listener: /debug/traces plus net/http/pprof. It is kept
// off the public Handler so a production deployment can bind it to
// localhost only.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTraces serves the recent-trace ring as JSON, newest first.
// Query parameters: n (max traces, default 32), route (exact root-span
// name match, e.g. /v1/maxvdd), min_dur (Go duration, e.g. 250ms —
// only traces at least that long).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "tracing is disabled"})
		return
	}
	// Malformed filters fall back to their defaults instead of
	// erroring: this is a diagnostics surface, and a dashboard link
	// with a stale or garbled query must still render something.
	q := r.URL.Query()
	n := 32
	if q.Has("n") {
		if v, err := strconv.Atoi(q.Get("n")); err == nil && v >= 1 {
			n = v
		}
	}
	var minDur time.Duration
	if q.Has("min_dur") {
		if v, err := time.ParseDuration(q.Get("min_dur")); err == nil && v > 0 {
			minDur = v
		}
	}
	route := q.Get("route")
	all := s.tracer.Recent(0)
	traces := make([]*obs.TraceOut, 0, n)
	for _, t := range all {
		if route != "" && t.Name != route {
			continue
		}
		if minDur > 0 && t.DurUs < float64(minDur.Microseconds()) {
			continue
		}
		traces = append(traces, t)
		if len(traces) == n {
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total_traces":    s.tracer.Total(),
		"late_spans":      s.tracer.LateSpans(),
		"ring":            len(all),
		"matched":         len(traces),
		"traces":          traces,
		"filters_applied": map[string]any{"route": route, "min_dur_us": minDur.Microseconds(), "n": n},
	})
}

// handleSLO serves the burn-rate engine's full report. Always 200:
// with no objectives configured it answers enabled=false with an empty
// objective list, so dashboards and smoke tests need no special case.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	reps := s.slo.Report()
	if reps == nil {
		reps = []obs.ObjectiveReport{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":    s.slo != nil,
		"objectives": reps,
	})
}

// SLOReport exposes the engine's report (nil when disabled) — the
// daemon logs a burn summary on shutdown.
func (s *Server) SLOReport() []obs.ObjectiveReport { return s.slo.Report() }

// WideEventsEmitted reports how many wide events have been written.
func (s *Server) WideEventsEmitted() int64 { return s.wide.Emitted() }

// apiError carries an HTTP status with a message; every other error
// maps to 500.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) error {
	return &apiError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// instrument wraps a /v1 handler with the production plumbing: method
// gating (405 with an Allow header), concurrency limiting (429 on
// saturation), the per-request deadline, the root trace span (honoring
// an incoming W3C traceparent and emitting one on the response), the
// in-flight gauge, panic containment, metrics, the slow-request
// warning, and one structured log line per request.
func (s *Server) instrument(route string, h func(context.Context, *http.Request) (any, error), allow ...string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := http.StatusOK
		traceID := ""
		var (
			rstats    *obs.ReqStats
			queueWait time.Duration
			staleSecs int64
			isStale   bool
			sampled   bool
			costStart costSnapshot
		)
		// Wide events: the head-sampling draw happens at request START
		// so unsampled requests can skip the cost sampling entirely at
		// emission; a 5xx overrides the draw at emission time. When the
		// log is disabled (nil), nothing below allocates for it.
		wide := s.wide
		if wide != nil {
			sampled = wide.shouldSample()
			costStart = readCost()
		}
		defer func() {
			d := time.Since(start)
			s.metrics.ObserveRequest(route, status, d)
			cache := cacheProvenance(rstats, isStale)
			_, _, _, peerFills, _ := rstats.Counts()
			s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("query", r.URL.RawQuery),
				slog.Int("status", status),
				slog.Int64("dur_us", d.Microseconds()),
				slog.String("remote", r.RemoteAddr),
				slog.String("trace_id", traceID),
				slog.String("cache", cache),
				slog.Int("peer_fills", peerFills),
			)
			if s.opts.SlowRequest > 0 && d >= s.opts.SlowRequest {
				s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
					slog.String("route", route),
					slog.String("query", r.URL.RawQuery),
					slog.Int64("dur_us", d.Microseconds()),
					slog.Int64("threshold_us", s.opts.SlowRequest.Microseconds()),
					slog.String("trace_id", traceID),
				)
			}
			s.slo.Observe(route, status, d, traceID)
			if wide != nil && (sampled || status >= 500) {
				wide.emit(buildWideEvent(route, reqObservation{
					start:      start,
					method:     r.Method,
					query:      r.URL.RawQuery,
					remote:     r.RemoteAddr,
					status:     status,
					traceID:    traceID,
					dur:        d,
					queueWait:  queueWait,
					stale:      isStale,
					stalenessS: staleSecs,
					sampled:    sampled,
					costStart:  costStart,
					costEnd:    readCost(),
				}, rstats))
			}
		}()

		// Method gate: a wrong verb answers 405 with the route's Allow
		// set before costing an admission slot or a trace.
		if len(allow) > 0 && !methodAllowed(r.Method, allow) {
			status = writeMethodNotAllowed(w, r, route, allow)
			return
		}

		// Draining: new requests are refused before costing anything, so
		// the load balancer (told via /readyz) and stragglers both get a
		// clean 503 while in-flight requests finish.
		if s.draining.Load() {
			s.metrics.DrainRejected.Add(1)
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "5")
			writeJSON(w, status, map[string]any{"error": "server is draining for shutdown"})
			return
		}

		// Admission: an instant slot, a bounded deadline-aware queue
		// wait, or a rejection that has already been written. Rejected
		// requests never start a trace: the shed path must stay
		// allocation-cheap precisely when the server is drowning.
		admitted, rejStatus := s.admit(w, r)
		if !admitted {
			status = rejStatus
			return
		}
		defer func() { <-s.sem }()
		enteredService := time.Now()
		queueWait = enteredService.Sub(start)
		defer func() { s.observeServiceTime(time.Since(enteredService)) }()

		s.metrics.InFlight.Add(1)
		defer s.metrics.InFlight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		ctx, annot := withAnnot(ctx)
		// Per-request cost accounting: the pipeline records its tier
		// walk (stage, provenance, build time) into the collector, and
		// the access log + wide event read it back at completion.
		ctx, rstats = obs.WithReqStats(ctx)

		// Per-request fault rules (test/staging): an X-Fault header arms
		// a request-scoped injector that follows the context into
		// detached stage builds. Specs without their own seed get a
		// per-request sequence number, so probabilistic rules vary
		// across requests yet stay replayable via an explicit seed=N.
		if s.opts.FaultHeader {
			if spec := r.Header.Get("X-Fault"); spec != "" {
				parsed, perr := fault.ParseSpec(spec)
				if perr != nil {
					status = http.StatusBadRequest
					writeJSON(w, status, map[string]any{"error": perr.Error()})
					return
				}
				ctx = fault.ContextWith(ctx, parsed.Injector(s.faultSeq.Add(1)))
			}
		}

		// Root span: adopt the caller's trace identity when the request
		// carries a valid traceparent, mint one otherwise, and echo the
		// resulting identity back so clients can join their records to
		// /debug/traces.
		parentTID, parentSID, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		ctx, root := s.tracer.StartTrace(ctx, route, parentTID, parentSID)
		if root != nil {
			traceID = root.TraceID()
			w.Header().Set("traceparent", obs.Traceparent(root.TraceID(), root.ID()))
			root.SetAttr("http_method", r.Method)
			if q := r.URL.RawQuery; q != "" {
				root.SetAttr("query", q)
			}
		}

		resp, err := func() (resp any, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("internal panic: %v", p)
				}
			}()
			// server.handler: the outermost injection point — an armed
			// error rule here exercises the full error-mapping path, a
			// panic rule the recovery above.
			if ferr := fault.InjectLabeled(ctx, "server.handler", route); ferr != nil {
				return nil, ferr
			}
			return h(ctx, r)
		}()

		var payload any
		switch {
		case err == nil:
			payload = resp
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.TimedOut.Add(1)
			status = http.StatusGatewayTimeout
			payload = map[string]any{"error": "request deadline exceeded"}
		default:
			var ae *apiError
			var oe *fault.OpenError
			switch {
			case errors.As(err, &ae):
				status = ae.code
			case errors.As(err, &oe):
				// Breaker fast-fail: shed load with an honest estimate of
				// when the half-open probe will be admitted.
				status = http.StatusServiceUnavailable
				w.Header().Set("Retry-After", retryAfterSeconds(time.Until(oe.Until)))
			default:
				switch fault.ClassOf(err) {
				case fault.Overload, fault.Transient:
					// Transient failures that survived the retry budget are
					// still worth the client retrying later.
					status = http.StatusServiceUnavailable
					w.Header().Set("Retry-After", "1")
				case fault.Cancelled:
					status = http.StatusGatewayTimeout
				default:
					status = http.StatusInternalServerError
				}
			}
			payload = map[string]any{"error": err.Error(), "class": fault.ClassOf(err).String()}
		}

		// Serve-stale annotation: the registry answered from the
		// last-good store because the fresh build failed.
		if age, stale := annot.staleness(); stale {
			isStale, staleSecs = true, int64(age.Seconds())
			w.Header().Set("Warning", `110 obdreld "Response is Stale"`)
			w.Header().Set("X-Staleness", strconv.FormatInt(int64(age.Seconds()), 10))
		}

		// End the trace before writing: the finalized tree is what
		// ?explain=1 embeds in the response body.
		if root != nil {
			root.SetAttr("status", status)
			out := root.EndTrace()
			if out != nil && explainRequested(r) {
				if mp, ok := payload.(map[string]any); ok {
					mp["trace"] = out
				}
			}
		}
		writeJSON(w, status, payload)
	})
}

// methodAllowed reports whether method is in the route's allow set.
func methodAllowed(method string, allow []string) bool {
	for _, m := range allow {
		if method == m {
			return true
		}
	}
	return false
}

// writeMethodNotAllowed answers 405 with the RFC-required Allow header
// listing the verbs the route accepts, and returns the status.
func writeMethodNotAllowed(w http.ResponseWriter, r *http.Request, route string, allow []string) int {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	writeJSON(w, http.StatusMethodNotAllowed, map[string]any{
		"error": fmt.Sprintf("method %s not allowed on %s (allow: %s)", r.Method, route, strings.Join(allow, ", ")),
	})
	return http.StatusMethodNotAllowed
}

// explainRequested reports whether the request opted into the span
// tree with ?explain=1 (or explain=true).
func explainRequested(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true":
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// await runs f in its own goroutine and returns its result, or the
// context error on expiry — f keeps running to completion so shared
// state (lazy engine builds inside an analyzer) is never abandoned
// half-made; the analyzer's own lock guarantees safety.
func await[T any](ctx context.Context, f func() (T, error)) (T, error) {
	type out struct {
		v   T
		err error
	}
	ch := make(chan out, 1)
	go func() {
		v, err := f()
		ch <- out{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// handleHealthz is LIVENESS: it answers 200 as long as the process can
// serve HTTP at all — including while draining, so an orchestrator
// does not kill a pod that is still finishing requests. Readiness
// (should traffic be routed here?) is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"uptime_s":         s.metrics.Uptime().Seconds(),
		"analyzers_cached": s.reg.Len(),
		"in_flight":        s.metrics.InFlight.Load(),
		"draining":         s.draining.Load(),
	})
}

// handleReadyz is READINESS: 200 while accepting new work, 503 once
// BeginDrain has run — flipped before the listener closes, so load
// balancers drain this instance gracefully.
// It also answers 503 "warming" while the anti-entropy artifact sweep
// is still loading this node's owned artifacts from disk, so a load
// balancer does not route traffic to a node that would rebuild stages
// its own disk already holds.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.warming.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":     "warming",
			"warming":    true,
			"warmed":     s.warmDone.Load(),
			"warm_total": s.warmTotal.Load(),
		})
		return
	}
	out := map[string]any{
		"status":  "ready",
		"warming": false,
		"warmed":  s.warmDone.Load(),
	}
	// Dynamic membership: report the view epoch and rebalance progress.
	// Rebalancing never gates readiness — the node serves throughout,
	// fetching per-query until the stream catches up.
	if m := s.member; m != nil {
		out["epoch"] = s.cluster.epochView()
		out["members"] = len(m.dir.Alive())
		if m.rebalancing.Load() {
			out["status"] = "rebalancing"
			out["rebalancing"] = true
			out["rebalance_done"] = m.rebalDone.Load()
			out["rebalance_total"] = m.rebalTotal.Load()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w)
}

// handleArtifact serves sealed stage artifacts to cluster peers:
// GET /v1/artifact/{stage}/{key} answers the OBDA container from this
// node's memory or disk tier, 404 when neither holds it. The sealed
// bytes go out verbatim — the fetching peer re-verifies the checksum,
// so a corrupt disk file on this node cannot propagate. Inputs are
// gated hard (registered stage, canonical fingerprint shape) because
// the key is about to be used in a file-path lookup.
//
// Cross-node tracing: a request carrying a valid W3C traceparent (the
// fetching peer's artifact.fetch span) is ADOPTED — this node roots a
// `peer.serve` span under the caller's trace identity, so both nodes'
// /debug/traces rings show the same trace id — and the finished span
// subtree is returned in the X-Obdrel-Span header for the fetcher to
// graft into its own tree.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	traceID := ""
	defer func() { s.observeOps("/v1/artifact", r, status, start, traceID) }()

	var root *obs.Span
	if tid, sid, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		_, root = s.tracer.StartTrace(r.Context(), "peer.serve", tid, sid)
		if root != nil {
			traceID = root.TraceID()
			if s.cluster != nil {
				// Per-node provenance: which node served this subtree.
				root.SetAttr("node", s.cluster.self)
			}
		}
	}
	// finish seals the serve span and hands its subtree to the caller
	// via header — BEFORE the body is written, which is why every exit
	// path goes through it.
	finish := func(held bool) {
		if root == nil {
			return
		}
		root.SetAttr("status", status)
		root.SetAttr("held", held)
		if out := root.EndTrace(); out != nil {
			if enc, err := json.Marshal(out.Root); err == nil {
				w.Header().Set(spanSubtreeHeader, string(enc))
			}
		}
	}
	if r.Method != http.MethodGet && r.Method != http.MethodPut {
		status = http.StatusMethodNotAllowed
		finish(false)
		writeJSON(w, status, map[string]any{"error": "GET or PUT only"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	stage, key, ok := strings.Cut(rest, "/")
	if !ok || strings.Contains(key, "/") {
		status = http.StatusBadRequest
		finish(false)
		writeJSON(w, status, map[string]any{"error": "want /v1/artifact/{stage}/{key}"})
		return
	}
	root.SetAttr("stage", stage)
	if _, registered := artifact.Lookup(stage); !registered || !obdrel.ValidFingerprint(key) {
		status = http.StatusBadRequest
		finish(false)
		writeJSON(w, status, map[string]any{"error": "unknown stage or malformed key"})
		return
	}
	if r.Method == http.MethodPut {
		// Replica receive: a peer pushes the sealed container it just
		// built (or streams one during rebalance). Install re-verifies
		// the checksum, so a garbled push rejects without side effects.
		body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
		if err != nil {
			status = http.StatusBadRequest
			finish(false)
			writeJSON(w, status, map[string]any{"error": "short body"})
			return
		}
		if err := s.stages.Install(stage, key, body); err != nil {
			if m := s.member; m != nil {
				m.replRejects.Add(1)
			}
			status = http.StatusBadRequest
			finish(false)
			writeJSON(w, status, map[string]any{"error": "invalid container: " + err.Error()})
			return
		}
		if m := s.member; m != nil {
			m.replReceives.Add(1)
		}
		status = http.StatusNoContent
		finish(true)
		w.WriteHeader(status)
		return
	}
	sealed, held := s.stages.Sealed(stage, key)
	if !held {
		status = http.StatusNotFound
		finish(false)
		writeJSON(w, status, map[string]any{"error": "artifact not held here"})
		return
	}
	s.peerServes.Add(1)
	finish(true)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(sealed)))
	w.Write(sealed)
}

// ArtifactStats exposes the node-level artifact counters (the daemon
// logs them in its shutdown summary).
func (s *Server) ArtifactStats() ArtifactStats { return s.artifactStats() }

// artifactStats feeds the obdreld_artifact_* metric families: cluster
// fetch counters (zero outside cluster mode) plus this node's serve
// and warm-sweep counters.
func (s *Server) artifactStats() ArtifactStats {
	st := ArtifactStats{
		PeerServes: s.peerServes.Load(),
		WarmLoaded: s.warmLoaded.Load(),
		Warming:    s.warming.Load(),
	}
	if cl := s.cluster; cl != nil {
		st.FetchAttempts = cl.fetchAttempts.Load()
		st.FetchFills = cl.fetchFills.Load()
		st.FetchErrors = cl.fetchErrors.Load()
		st.FetchHedged = cl.fetchHedged.Load()
		st.FetchHedgeWins = cl.fetchHedgeWins.Load()
		st.ReplicaPushes = cl.replicaPushes.Load()
		st.ReplicaPushErrors = cl.replicaPushErrs.Load()
		st.ReplicaDropped = cl.replicaDropped.Load()
		st.Epoch = cl.epochView()
		st.Replicas = cl.replicaFactor()
	}
	if m := s.member; m != nil {
		st.Dynamic = true
		st.ReplicaReceives = m.replReceives.Load()
		st.ReplicaRejects = m.replRejects.Load()
		st.Rebalancing = m.rebalancing.Load()
		st.RebalanceSweeps = m.rebalSweeps.Load()
		st.RebalanceFetched = m.rebalFetched.Load()
		st.KeysLost = m.keysLost.Load()
		st.HeartbeatErrors = m.heartbeatErrs.Load()
		st.MembersActive, st.MembersSuspect, st.MembersDead = m.dir.Counts()
	}
	return st
}

func (s *Server) handleDesigns(ctx context.Context, r *http.Request) (any, error) {
	type designInfo struct {
		Name    string  `json:"name"`
		Blocks  int     `json:"blocks"`
		Devices int     `json:"devices"`
		DieW    float64 `json:"die_w"`
		DieH    float64 `json:"die_h"`
	}
	out := make([]designInfo, 0, len(s.order))
	for _, name := range s.order {
		d := s.designs[name]
		out = append(out, designInfo{
			Name: d.Name, Blocks: len(d.Blocks), Devices: d.TotalDevices(),
			DieW: d.W, DieH: d.H,
		})
	}
	return map[string]any{"designs": out}, nil
}

func (s *Server) handleLifetime(ctx context.Context, r *http.Request) (any, error) {
	req, err := parseRequest(r)
	if err != nil {
		return nil, err
	}
	d, cfg, m, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	ppm := req.PPM
	if ppm == 0 {
		ppm = 10
	}
	an, src, err := s.reg.Get(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, qsp := obs.StartSpan(ctx, "query.lifetime")
	annotateQuery(qsp, m, cfg)
	var life float64
	if an.EngineReady(m) {
		// Warm path: the engine exists, the query is a µs-scale,
		// allocation-free lookup — call it directly instead of paying a
		// goroutine + channel + closure per request.
		life, err = an.LifetimePPM(ppm, m)
	} else {
		life, err = await(ctx, func() (float64, error) { return an.LifetimePPM(ppm, m) })
	}
	qsp.End()
	if err != nil {
		return nil, queryErr(err)
	}
	out := map[string]any{
		"design":         d.Name,
		"method":         m.String(),
		"ppm":            ppm,
		"lifetime_hours": life,
		"cache":          src.Label(),
		"query_us":       time.Since(start).Microseconds(),
	}
	addStaleness(out, src)
	return out, nil
}

// addStaleness surfaces serve-stale provenance in the payload (the
// headers carry it too; the body keeps scripted clients honest).
func addStaleness(out map[string]any, src GetResult) {
	if src.Stale {
		out["staleness_s"] = int64(src.StaleAge.Seconds())
	}
}

// annotateQuery records the work a method query implies: the sample
// counts driving MC-flavoured evaluation, the table resolution for
// hybrid lookups. Nil spans skip the boxing entirely.
func annotateQuery(sp *obs.Span, m obdrel.Method, cfg *obdrel.Config) {
	if sp == nil {
		return
	}
	sp.SetAttr("method", m.String())
	switch m {
	case obdrel.MethodMC:
		sp.SetAttr("mc_samples", cfg.MCSamples)
	case obdrel.MethodStMC:
		sp.SetAttr("stmc_samples", cfg.StMCSamples)
	case obdrel.MethodHybrid:
		sp.SetAttr("hybrid_nl", cfg.HybridNL)
		sp.SetAttr("hybrid_nb", cfg.HybridNB)
	}
}

func (s *Server) handleFailureProb(ctx context.Context, r *http.Request) (any, error) {
	req, err := parseRequest(r)
	if err != nil {
		return nil, err
	}
	d, cfg, m, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	if !(req.T > 0) {
		return nil, errBadRequest("t (hours) must be positive, got %v", req.T)
	}
	an, src, err := s.reg.Get(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, qsp := obs.StartSpan(ctx, "query.failureprob")
	annotateQuery(qsp, m, cfg)
	var p float64
	if an.EngineReady(m) {
		// Warm path: direct call, same rationale as handleLifetime.
		p, err = an.FailureProb(req.T, m)
	} else {
		p, err = await(ctx, func() (float64, error) { return an.FailureProb(req.T, m) })
	}
	qsp.End()
	if err != nil {
		return nil, queryErr(err)
	}
	out := map[string]any{
		"design":       d.Name,
		"method":       m.String(),
		"t_hours":      req.T,
		"failure_prob": p,
		"reliability":  1 - p,
		"cache":        src.Label(),
		"query_us":     time.Since(start).Microseconds(),
	}
	addStaleness(out, src)
	return out, nil
}

func (s *Server) handleMaxVDD(ctx context.Context, r *http.Request) (any, error) {
	req, err := parseRequest(r)
	if err != nil {
		return nil, err
	}
	d, cfg, m, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	ppm := req.PPM
	if ppm == 0 {
		ppm = 10
	}
	if !(req.TargetHours > 0) {
		return nil, errBadRequest("target_hours must be positive, got %v", req.TargetHours)
	}
	vLo, vHi := req.VLo, req.VHi
	if vLo == 0 {
		vLo = 0.9
	}
	if vHi == 0 {
		vHi = 1.5
	}
	// Probe analyzers route through the registry, so the bisection's
	// repeat visits (and later searches over the same bracket) reuse
	// characterized voltages.
	probes := 0
	factory := func(fctx context.Context, pd *obdrel.Design, pc *obdrel.Config) (*obdrel.Analyzer, error) {
		probes++
		an, _, err := s.reg.Get(fctx, pd, pc)
		return an, err
	}
	v, err := await(ctx, func() (float64, error) {
		return obdrel.MaxVDDFromCtx(ctx, factory, d, cfg, m, ppm, req.TargetHours, vLo, vHi, req.TolV)
	})
	if err != nil {
		return nil, queryErr(err)
	}
	return map[string]any{
		"design":       d.Name,
		"method":       m.String(),
		"ppm":          ppm,
		"target_hours": req.TargetHours,
		"vdd_bracket":  []float64{vLo, vHi},
		"max_vdd":      v,
		"probes":       probes,
	}, nil
}

func (s *Server) handleBlocks(ctx context.Context, r *http.Request) (any, error) {
	req, err := parseRequest(r)
	if err != nil {
		return nil, err
	}
	d, cfg, _, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	an, src, err := s.reg.Get(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	type blockOut struct {
		Name    string  `json:"name"`
		MeanTC  float64 `json:"mean_temp_c"`
		MaxTC   float64 `json:"max_temp_c"`
		PowerW  float64 `json:"power_w"`
		AlphaH  float64 `json:"alpha_h"`
		BPerNm  float64 `json:"b_per_nm"`
		Devices int     `json:"devices"`
	}
	blocks := an.Blocks()
	out := make([]blockOut, len(blocks))
	for i, b := range blocks {
		out[i] = blockOut{
			Name: b.Name, MeanTC: b.MeanTempC, MaxTC: b.MaxTempC,
			PowerW: b.PowerW, AlphaH: b.Alpha, BPerNm: b.B, Devices: b.Devices,
		}
	}
	tmin, tmean, tmax := an.TempSpread()
	payload := map[string]any{
		"design": d.Name,
		"cache":  src.Label(),
		"blocks": out,
		"temp_c": map[string]float64{"min": tmin, "mean": tmean, "max": tmax},
	}
	addStaleness(payload, src)
	return payload, nil
}

// queryErr maps analyzer-level validation failures (bad ppm, bad
// time) to 400; anything else stays a 500/504.
func queryErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return err
	}
	if strings.Contains(err.Error(), "obdrel:") {
		return &apiError{code: http.StatusBadRequest, msg: err.Error()}
	}
	return err
}

// apiRequest is the query envelope, accepted as URL query parameters
// (GET) or a JSON body (POST). Config knobs are pointers so "absent"
// and "zero" stay distinguishable; absent knobs keep DefaultConfig.
type apiRequest struct {
	Design      string       `json:"design"`
	Method      string       `json:"method"`
	PPM         float64      `json:"ppm"`
	T           float64      `json:"t"`
	TargetHours float64      `json:"target_hours"`
	VLo         float64      `json:"vlo"`
	VHi         float64      `json:"vhi"`
	TolV        float64      `json:"tolv"`
	Config      configParams `json:"config"`
}

type configParams struct {
	VDD         *float64 `json:"vdd"`
	SigmaRatio  *float64 `json:"sigma_ratio"`
	RhoDist     *float64 `json:"rho_dist"`
	Grid        *int     `json:"grid"`
	MCSamples   *int     `json:"mc_samples"`
	StMCSamples *int     `json:"stmc_samples"`
	HybridNL    *int     `json:"hybrid_nl"`
	HybridNB    *int     `json:"hybrid_nb"`
	GuardSigmas *float64 `json:"guard_sigmas"`
	PCAKeep     *float64 `json:"pca_keep"`
	L0          *int     `json:"l0"`
	Seed        *int64   `json:"seed"`
	BlockMaxT   *bool    `json:"use_block_max_temp"`
	QuadTree    *bool    `json:"quadtree"`
	Defects     *float64 `json:"defects"`
}

// Resource caps on untrusted knobs: a request must not be able to ask
// for an arbitrarily large eigendecomposition or sample count.
const (
	maxGrid        = 64
	maxMCSamples   = 20000
	maxStMCSamples = 200000
	maxHybridN     = 512
	maxL0          = 128
)

func parseRequest(r *http.Request) (*apiRequest, error) {
	var req apiRequest
	switch r.Method {
	case http.MethodGet:
		if err := parseQuery(r, &req); err != nil {
			return nil, err
		}
	case http.MethodPost:
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, errBadRequest("bad JSON body: %v", err)
		}
	default:
		return nil, &apiError{code: http.StatusMethodNotAllowed, msg: "use GET with query parameters or POST with a JSON body"}
	}
	return &req, nil
}

func parseQuery(r *http.Request, req *apiRequest) error {
	q := r.URL.Query()
	var err error
	getF := func(key string, dst *float64) {
		if err != nil || !q.Has(key) {
			return
		}
		v, perr := strconv.ParseFloat(q.Get(key), 64)
		if perr != nil {
			err = errBadRequest("parameter %q: %v", key, perr)
			return
		}
		*dst = v
	}
	getFP := func(key string, dst **float64) {
		if err != nil || !q.Has(key) {
			return
		}
		var v float64
		getF(key, &v)
		if err == nil {
			*dst = &v
		}
	}
	getIP := func(key string, dst **int) {
		if err != nil || !q.Has(key) {
			return
		}
		v, perr := strconv.Atoi(q.Get(key))
		if perr != nil {
			err = errBadRequest("parameter %q: %v", key, perr)
			return
		}
		*dst = &v
	}
	getBP := func(key string, dst **bool) {
		if err != nil || !q.Has(key) {
			return
		}
		v, perr := strconv.ParseBool(q.Get(key))
		if perr != nil {
			err = errBadRequest("parameter %q: %v", key, perr)
			return
		}
		*dst = &v
	}
	req.Design = q.Get("design")
	req.Method = q.Get("method")
	getF("ppm", &req.PPM)
	getF("t", &req.T)
	getF("target_hours", &req.TargetHours)
	getF("vlo", &req.VLo)
	getF("vhi", &req.VHi)
	getF("tolv", &req.TolV)
	getFP("vdd", &req.Config.VDD)
	getFP("sigma_ratio", &req.Config.SigmaRatio)
	getFP("rho_dist", &req.Config.RhoDist)
	getIP("grid", &req.Config.Grid)
	getIP("mc_samples", &req.Config.MCSamples)
	getIP("stmc_samples", &req.Config.StMCSamples)
	getIP("hybrid_nl", &req.Config.HybridNL)
	getIP("hybrid_nb", &req.Config.HybridNB)
	getFP("guard_sigmas", &req.Config.GuardSigmas)
	getFP("pca_keep", &req.Config.PCAKeep)
	getIP("l0", &req.Config.L0)
	getBP("use_block_max_temp", &req.Config.BlockMaxT)
	getBP("quadtree", &req.Config.QuadTree)
	getFP("defects", &req.Config.Defects)
	if q.Has("seed") {
		v, perr := strconv.ParseInt(q.Get("seed"), 10, 64)
		if perr != nil {
			return errBadRequest("parameter %q: %v", "seed", perr)
		}
		req.Config.Seed = &v
	}
	return err
}

// resolve maps the request onto a design, a validated Config, and a
// method. The config starts from DefaultConfig, applies only the
// supplied knobs (under the resource caps), then runs the library's
// full validation so untrusted garbage fails with a 400 and a
// descriptive message.
func (s *Server) resolve(req *apiRequest) (*obdrel.Design, *obdrel.Config, obdrel.Method, error) {
	name := req.Design
	if name == "" {
		name = "C6"
	}
	d, ok := s.designs[strings.ToUpper(name)]
	if !ok {
		return nil, nil, 0, errNotFound("unknown design %q (see /v1/designs)", req.Design)
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg, err := buildConfig(&req.Config, &s.opts)
	if err != nil {
		return nil, nil, 0, err
	}
	return d, cfg, m, nil
}

func parseMethod(name string) (obdrel.Method, error) {
	if name == "" {
		return obdrel.MethodHybrid, nil
	}
	for _, m := range obdrel.Methods() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, errBadRequest("unknown method %q (want one of %v)", name, obdrel.Methods())
}

func buildConfig(p *configParams, o *Options) (*obdrel.Config, error) {
	cfg := obdrel.DefaultConfig()
	cfg.Workers = o.Workers
	cfg.TableDir = o.TableDir
	if p.VDD != nil {
		cfg.VDD = *p.VDD
	}
	if p.SigmaRatio != nil {
		cfg.SigmaRatio = *p.SigmaRatio
	}
	if p.RhoDist != nil {
		cfg.RhoDist = *p.RhoDist
	}
	if p.Grid != nil {
		if *p.Grid > maxGrid {
			return nil, errBadRequest("grid %d exceeds the service cap %d", *p.Grid, maxGrid)
		}
		cfg.GridNx, cfg.GridNy = *p.Grid, *p.Grid
	}
	if p.MCSamples != nil {
		if *p.MCSamples > maxMCSamples {
			return nil, errBadRequest("mc_samples %d exceeds the service cap %d", *p.MCSamples, maxMCSamples)
		}
		cfg.MCSamples = *p.MCSamples
	}
	if p.StMCSamples != nil {
		if *p.StMCSamples > maxStMCSamples {
			return nil, errBadRequest("stmc_samples %d exceeds the service cap %d", *p.StMCSamples, maxStMCSamples)
		}
		cfg.StMCSamples = *p.StMCSamples
	}
	if p.HybridNL != nil {
		if *p.HybridNL > maxHybridN {
			return nil, errBadRequest("hybrid_nl %d exceeds the service cap %d", *p.HybridNL, maxHybridN)
		}
		cfg.HybridNL = *p.HybridNL
	}
	if p.HybridNB != nil {
		if *p.HybridNB > maxHybridN {
			return nil, errBadRequest("hybrid_nb %d exceeds the service cap %d", *p.HybridNB, maxHybridN)
		}
		cfg.HybridNB = *p.HybridNB
	}
	if p.GuardSigmas != nil {
		cfg.GuardSigmas = *p.GuardSigmas
	}
	if p.PCAKeep != nil {
		cfg.PCAKeepFraction = *p.PCAKeep
	}
	if p.L0 != nil {
		if *p.L0 > maxL0 {
			return nil, errBadRequest("l0 %d exceeds the service cap %d", *p.L0, maxL0)
		}
		cfg.L0 = *p.L0
	}
	if p.Seed != nil {
		cfg.Seed = *p.Seed
	}
	if p.BlockMaxT != nil {
		cfg.UseBlockMaxTemp = *p.BlockMaxT
	}
	if p.QuadTree != nil {
		cfg.QuadTree = *p.QuadTree
	}
	if p.Defects != nil && *p.Defects != 0 {
		ext := *obd.DefaultExtrinsic()
		ext.DefectFraction = *p.Defects
		cfg.Extrinsic = &ext
	}
	if err := cfg.Validate(); err != nil {
		return nil, errBadRequest("%v", err)
	}
	if cfg.Extrinsic != nil {
		if err := cfg.Extrinsic.Validate(); err != nil {
			return nil, errBadRequest("%v", err)
		}
	}
	return cfg, nil
}
