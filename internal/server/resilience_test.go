package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"obdrel"
)

// getResp is getJSON plus the response itself, for header assertions.
func getResp(t *testing.T, url string, hdr map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	_ = json.Unmarshal(body, &out)
	return resp, out
}

// TestServeStaleOnFailedRebuild evicts an analyzer from the primary
// LRU, poisons the builder, and verifies the next request for the
// evicted key is served from the last-good store with full staleness
// provenance: cache="stale" + staleness_s in the payload, the Warning
// and X-Staleness headers, and the serve_stale counter.
func TestServeStaleOnFailedRebuild(t *testing.T) {
	var fail atomic.Bool
	s := New(Options{
		MaxAnalyzers: 1,
		MaxStale:     time.Hour,
		Build: func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
			if fail.Load() {
				return nil, errors.New("substrate characterization backend down")
			}
			return obdrel.NewAnalyzerCtx(ctx, d, cfg)
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	urlA := srv.URL + "/v1/lifetime?design=C1&ppm=100&" + cheap
	urlB := srv.URL + "/v1/lifetime?design=C1&ppm=100&seed=2&" + cheap

	if resp, out := getResp(t, urlA, nil); resp.StatusCode != http.StatusOK || out["cache"] != "miss" {
		t.Fatalf("first build: status=%d cache=%v", resp.StatusCode, out["cache"])
	}
	// Evict A from the capacity-1 primary LRU.
	if resp, _ := getResp(t, urlB, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("evicting build failed: %d", resp.StatusCode)
	}

	fail.Store(true)
	resp, out := getResp(t, urlA, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale serve: status=%d body=%v", resp.StatusCode, out)
	}
	if out["cache"] != "stale" {
		t.Fatalf("cache label = %v, want stale", out["cache"])
	}
	if _, ok := out["staleness_s"]; !ok {
		t.Fatalf("payload missing staleness_s: %v", out)
	}
	if w := resp.Header.Get("Warning"); !strings.Contains(w, "Response is Stale") {
		t.Fatalf("Warning header = %q", w)
	}
	if resp.Header.Get("X-Staleness") == "" {
		t.Fatal("X-Staleness header missing")
	}
	if got := s.Metrics().ServeStale.Load(); got != 1 {
		t.Fatalf("ServeStale = %d, want 1", got)
	}

	// With a healthy builder again the same key rebuilds fresh.
	fail.Store(false)
	if resp, out := getResp(t, urlA, nil); resp.StatusCode != http.StatusOK || out["cache"] != "miss" {
		t.Fatalf("recovery rebuild: status=%d cache=%v", resp.StatusCode, out["cache"])
	}
}

// TestServeStaleDisabled verifies a negative MaxStale turns the
// degradation off: the failed rebuild surfaces as an error.
func TestServeStaleDisabled(t *testing.T) {
	var fail atomic.Bool
	s := New(Options{
		MaxAnalyzers:     1,
		MaxStale:         -1,
		BreakerThreshold: -1,
		Build: func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
			if fail.Load() {
				return nil, errors.New("backend down")
			}
			return obdrel.NewAnalyzerCtx(ctx, d, cfg)
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	urlA := srv.URL + "/v1/lifetime?design=C1&ppm=100&" + cheap
	getResp(t, urlA, nil)
	getResp(t, srv.URL+"/v1/lifetime?design=C1&ppm=100&seed=2&"+cheap, nil)
	fail.Store(true)
	if resp, _ := getResp(t, urlA, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("disabled serve-stale: status=%d, want 500", resp.StatusCode)
	}
}

// TestXFaultHeaderInjection covers the per-request injection path:
// transient and permanent error rules map to 503/500 with the class in
// the body, a panic rule is contained to a 500, a malformed spec is a
// 400, and requests without the header are untouched.
func TestXFaultHeaderInjection(t *testing.T) {
	srv := newTestServer(t, Options{FaultHeader: true})
	url := srv.URL + "/v1/designs"

	resp, out := getResp(t, url, map[string]string{"X-Fault": "server.handler:error:1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("transient inject: status=%d body=%v", resp.StatusCode, out)
	}
	if out["class"] != "transient" {
		t.Fatalf("class = %v, want transient", out["class"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("transient 503 missing Retry-After")
	}

	if resp, out := getResp(t, url, map[string]string{"X-Fault": "server.handler:perm:1"}); resp.StatusCode != http.StatusInternalServerError || out["class"] != "permanent" {
		t.Fatalf("permanent inject: status=%d class=%v", resp.StatusCode, out["class"])
	}

	if resp, out := getResp(t, url, map[string]string{"X-Fault": "server.handler:panic:1"}); resp.StatusCode != http.StatusInternalServerError || !strings.Contains(out["error"].(string), "internal panic") {
		t.Fatalf("panic inject: status=%d body=%v", resp.StatusCode, out)
	}

	if resp, _ := getResp(t, url, map[string]string{"X-Fault": "no-such-grammar::"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status=%d, want 400", resp.StatusCode)
	}

	// Match filters: a rule scoped to another route never fires here.
	if resp, _ := getResp(t, url, map[string]string{"X-Fault": "server.handler(/v1/maxvdd):error:1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("scoped rule fired on wrong route: %d", resp.StatusCode)
	}

	if resp, _ := getResp(t, url, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean request: status=%d", resp.StatusCode)
	}
}

// TestXFaultHeaderIgnoredByDefault verifies the header is inert unless
// the server opted in.
func TestXFaultHeaderIgnoredByDefault(t *testing.T) {
	srv := newTestServer(t, Options{})
	resp, _ := getResp(t, srv.URL+"/v1/designs", map[string]string{"X-Fault": "server.handler:error:1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-Fault honoured without FaultHeader: %d", resp.StatusCode)
	}
}

// TestBreakerOpenMapsTo503 drives a key past the breaker threshold and
// verifies the fast-fail surfaces as 503 with a Retry-After horizon.
func TestBreakerOpenMapsTo503(t *testing.T) {
	s := New(Options{
		MaxStale:         -1,
		BreakerThreshold: 1,
		BreakerOpenFor:   time.Hour,
		Build: func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
			return nil, errors.New("poisoned design")
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	url := srv.URL + "/v1/lifetime?design=C1&ppm=100&" + cheap
	if resp, _ := getResp(t, url, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first failure: status=%d, want 500", resp.StatusCode)
	}
	resp, out := getResp(t, url, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker fast-fail: status=%d body=%v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 missing Retry-After")
	}
	if out["class"] != "overload" {
		t.Fatalf("class = %v, want overload", out["class"])
	}
}

// TestAdmissionQueueWaits verifies QueueDepth turns the legacy instant
// 429 into a bounded wait: a saturated request queues, then succeeds
// once the slot frees; an overflowing request is still 429'd.
func TestAdmissionQueueWaits(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := New(Options{
		MaxConcurrent:  1,
		QueueDepth:     1,
		RequestTimeout: 10 * time.Second,
		Build: func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
			entered <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return obdrel.NewAnalyzerCtx(ctx, d, cfg)
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	url := srv.URL + "/v1/lifetime?design=C1&ppm=100&" + cheap

	type result struct {
		status int
	}
	resA := make(chan result, 1)
	go func() {
		resp, _ := http.Get(url)
		resp.Body.Close()
		resA <- result{resp.StatusCode}
	}()
	<-entered // A holds the slot, blocked in its build.

	resB := make(chan result, 1)
	go func() {
		resp, _ := http.Get(url)
		resp.Body.Close()
		resB <- result{resp.StatusCode}
	}()
	// Wait until B occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.queueLen.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request B never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// C overflows the depth-1 queue: instant 429.
	if resp, _ := getResp(t, url, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status=%d, want 429", resp.StatusCode)
	}

	close(release)
	if r := <-resA; r.status != http.StatusOK {
		t.Fatalf("request A: %d", r.status)
	}
	if r := <-resB; r.status != http.StatusOK {
		t.Fatalf("queued request B: %d, want 200 after slot freed", r.status)
	}
}

// TestAdmissionRejectEarly verifies the deadline-aware controller
// refuses a request whose predicted queue wait already exceeds its
// deadline — instantly, not after RequestTimeout.
func TestAdmissionRejectEarly(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, RequestTimeout: 50 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Teach the controller that requests take far longer than any
	// deadline, then saturate the only slot.
	s.observeServiceTime(10 * time.Second)
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	resp, out := getResp(t, srv.URL+"/v1/designs", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("reject-early: status=%d body=%v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("reject-early 503 missing Retry-After")
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("reject-early took %v — should not wait for the deadline", d)
	}
	if got := s.Metrics().AdmissionRejected.Load(); got != 1 {
		t.Fatalf("AdmissionRejected = %d, want 1", got)
	}
}

// TestAdmissionQueueTimeout verifies a queued request that never gets
// a slot inside its deadline leaves with a 503 and is counted.
func TestAdmissionQueueTimeout(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, RequestTimeout: 50 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	resp, _ := getResp(t, srv.URL+"/v1/designs", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue timeout: status=%d, want 503", resp.StatusCode)
	}
	if got := s.Metrics().QueueTimeouts.Load(); got != 1 {
		t.Fatalf("QueueTimeouts = %d, want 1", got)
	}
}

// TestLegacyInstant429 pins the default behaviour: with QueueDepth
// unset, saturation still answers an immediate 429.
func TestLegacyInstant429(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	resp, _ := getResp(t, srv.URL+"/v1/designs", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("legacy saturation: status=%d, want 429", resp.StatusCode)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("legacy 429 took %v — must be instant", d)
	}
}

// TestDrainLifecycle verifies BeginDrain flips /readyz to 503 (while
// /healthz stays 200 for liveness) and sheds new /v1 work with a
// Retry-After, counting each rejection.
func TestDrainLifecycle(t *testing.T) {
	s := New(Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp, out := getResp(t, srv.URL+"/readyz", nil); resp.StatusCode != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("readyz before drain: status=%d body=%v", resp.StatusCode, out)
	}

	s.BeginDrain()

	resp, out := getResp(t, srv.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || out["status"] != "draining" {
		t.Fatalf("readyz during drain: status=%d body=%v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz missing Retry-After")
	}

	if resp, out := getResp(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK || out["draining"] != true {
		t.Fatalf("healthz during drain: status=%d body=%v", resp.StatusCode, out)
	}

	resp, _ = getResp(t, srv.URL+"/v1/designs", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("v1 during drain: status=%d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After")
	}
	if got := s.Metrics().DrainRejected.Load(); got != 1 {
		t.Fatalf("DrainRejected = %d, want 1", got)
	}
}

// TestTracesMalformedFiltersFallBack pins the diagnostics contract: a
// garbled dashboard link still renders, using the defaults.
func TestTracesMalformedFiltersFallBack(t *testing.T) {
	s := New(Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	getJSON(t, srv.URL+"/v1/designs", http.StatusOK)

	out := getJSON(t, dbg.URL+"/debug/traces?n=bogus&min_dur=alsobogus", http.StatusOK)
	if out["matched"].(float64) < 1 {
		t.Fatalf("fallback defaults matched nothing: %v", out)
	}
	getJSON(t, dbg.URL+"/debug/traces?n=-3&min_dur=-5s", http.StatusOK)
}

// TestResilienceMetricsExposition verifies the new counters and gauges
// appear on /metrics.
func TestResilienceMetricsExposition(t *testing.T) {
	s := New(Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"obdreld_serve_stale_total",
		"obdreld_admission_rejected_total",
		"obdreld_queue_timeouts_total",
		"obdreld_drain_rejected_total",
		"obdreld_fault_injected_total",
		"obdreld_stale_age_seconds",
		"obdreld_queue_depth",
		"obdreld_draining",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
