package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/member"
	"obdrel/internal/pipeline"
)

// This file is the dynamic-membership side of cluster mode (-join):
// the gossip exchange endpoint, the heartbeat loop, the async k-way
// replicator, and the epoch-triggered rebalance sweep. Static mode
// (-peers) touches none of it — s.dir stays nil and the ring is
// immutable for the process lifetime.

// membership bundles the dynamic-mode machinery hanging off a Server.
type membership struct {
	dir   *member.Directory
	seeds []string // -join URLs, normalized, self excluded
	repl  *replicator

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Rebalance progress, surfaced by /readyz: a sweep never gates
	// serving, it only reports.
	rebalKick    chan struct{}
	rebalancing  atomic.Bool
	rebalDone    atomic.Int64
	rebalTotal   atomic.Int64
	rebalFetched atomic.Int64
	rebalSweeps  atomic.Int64
	// keysLost counts artifacts held locally that the current ring no
	// longer assigns to this node (kept — they still serve fetches —
	// but reported so an operator can watch placement drift).
	keysLost atomic.Int64

	heartbeatErrs atomic.Int64
	replReceives  atomic.Int64
	replRejects   atomic.Int64
}

// startMembership wires the directory to the cluster ring and starts
// the heartbeat and rebalance workers. Called from NewE in dynamic
// mode only.
func (s *Server) startMembership(seeds []string, lease time.Duration) {
	m := &membership{
		dir:       member.New(s.cluster.self, lease, nil),
		stop:      make(chan struct{}),
		rebalKick: make(chan struct{}, 1),
		repl:      newReplicator(s),
	}
	for _, seed := range seeds {
		if seed = normalizePeer(seed); seed != "" && seed != s.cluster.self {
			m.seeds = append(m.seeds, seed)
		}
	}
	s.member = m
	m.dir.SetOnChange(func(ch member.Change) { s.onMembershipChange(ch) })

	m.wg.Add(2)
	go s.heartbeatLoop()
	go s.rebalanceLoop()
}

// Close stops the dynamic-membership background work (heartbeats,
// replication pushes, rebalance sweeps) WITHOUT a graceful leave —
// the in-process equivalent of kill −9 plus goroutine hygiene. A
// graceful exit calls BeginDrain first, which gossips the obituary.
// Close is a no-op outside dynamic mode and safe to call twice.
func (s *Server) Close() {
	m := s.member
	if m == nil {
		return
	}
	m.stopOnce.Do(func() {
		close(m.stop)
		m.repl.close()
	})
	m.wg.Wait()
}

// onMembershipChange swaps the ring to the directory's new alive set
// and kicks the rebalance worker when the ring actually changed.
func (s *Server) onMembershipChange(ch member.Change) {
	_, changed := s.cluster.setMembers(ch.Alive, ch.Epoch)
	if !changed {
		return
	}
	select {
	case s.member.rebalKick <- struct{}{}:
	default: // a sweep is already queued; it will see the new ring
	}
}

// heartbeatInterval is lease/3 so a member gets two chances to renew
// before turning suspect at lease/2.
func (m *membership) heartbeatInterval() time.Duration {
	iv := m.dir.Lease() / 3
	if iv < 25*time.Millisecond {
		iv = 25 * time.Millisecond
	}
	return iv
}

// heartbeatLoop sweeps lease expiries and exchanges directory
// snapshots with every alive peer (and, while the directory is still
// lonely, the configured seeds) each interval. Push-pull: the POST
// body is our snapshot, the response is the peer's merged view.
func (s *Server) heartbeatLoop() {
	m := s.member
	defer m.wg.Done()
	ticker := time.NewTicker(m.heartbeatInterval())
	defer ticker.Stop()

	// Join immediately rather than waiting out the first tick.
	s.gossipRound()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.dir.Sweep()
			s.gossipRound()
		}
	}
}

// gossipRound exchanges snapshots with every target concurrently and
// merges the responses.
func (s *Server) gossipRound() {
	m := s.member
	targets := map[string]bool{}
	for _, p := range m.dir.Alive() {
		if p != s.cluster.self {
			targets[p] = true
		}
	}
	// Seeds the directory has never heard of (bootstrap, or everyone
	// else is dead and we are re-seeding) are contacted too; a seed
	// with a live tombstone is left alone until it rejoins on its own.
	known := map[string]bool{}
	for _, mi := range m.dir.Members() {
		known[mi.Node] = true
	}
	for _, seed := range m.seeds {
		if !known[seed] {
			targets[seed] = true
		}
	}
	if len(targets) == 0 {
		return
	}
	snap := m.dir.Snapshot()
	var wg sync.WaitGroup
	for peer := range targets {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if resp, err := s.exchange(peer, snap); err == nil {
				m.dir.Merge(*resp)
				m.dir.Contact(peer)
			} else {
				m.heartbeatErrs.Add(1)
			}
		}(peer)
	}
	wg.Wait()
}

// exchange POSTs our snapshot to one peer's /v1/cluster/join and
// returns its merged view.
func (s *Server) exchange(peer string, snap member.List) (*member.List, error) {
	body, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cluster.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, errBadRequest("join %s: status %d", peer, resp.StatusCode)
	}
	var merged member.List
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&merged); err != nil {
		return nil, err
	}
	return &merged, nil
}

// handleClusterJoin is the push-pull gossip surface: the request body
// is the sender's directory snapshot, the response is ours after the
// merge. Registered only in dynamic mode; static nodes 404.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observeOps("/v1/cluster/join", r, status, start, "") }()
	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		writeJSON(w, status, map[string]any{"error": "POST only"})
		return
	}
	var in member.List
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&in); err != nil {
		status = http.StatusBadRequest
		writeJSON(w, status, map[string]any{"error": "bad member list: " + err.Error()})
		return
	}
	m := s.member
	m.dir.Merge(in)
	m.dir.Contact(in.From)
	writeJSON(w, status, m.dir.Snapshot())
}

// handleClusterKeys lists this node's artifact inventory — the
// rebalance sweep's discovery surface. Available in both cluster
// modes (a static node's inventory is just as useful to a dynamic
// cluster being migrated onto).
func (s *Server) handleClusterKeys(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observeOps("/v1/cluster/keys", r, status, start, "") }()
	if r.Method != http.MethodGet {
		status = http.StatusMethodNotAllowed
		writeJSON(w, status, map[string]any{"error": "GET only"})
		return
	}
	node := ""
	var epoch uint64
	if s.cluster != nil {
		node, epoch = s.cluster.self, s.cluster.epochView()
	}
	writeJSON(w, status, map[string]any{
		"node":  node,
		"epoch": epoch,
		"keys":  s.stages.Inventory(),
	})
}

// rebalanceLoop runs one sweep per kick, coalescing bursts: the sweep
// always evaluates the CURRENT ring, so ten epoch bumps during a
// sweep cost one follow-up sweep, not ten.
func (s *Server) rebalanceLoop() {
	m := s.member
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-m.rebalKick:
			s.rebalanceSweep()
		}
	}
}

// rebalanceSweep streams newly-owned artifacts from their old owners.
// The "diff against the previous ring" is evaluated as owned-now ∧
// not-held-locally against the peers' inventories — equivalent for
// deciding what to stream, and self-healing: a sweep interrupted by a
// crash or another epoch bump simply leaves keys for the next sweep.
// Serving is never gated; /readyz reports progress while the node
// keeps answering queries (fetching per-query if it must).
func (s *Server) rebalanceSweep() {
	m := s.member
	m.rebalSweeps.Add(1)
	m.rebalancing.Store(true)
	m.rebalDone.Store(0)
	m.rebalTotal.Store(0)
	defer m.rebalancing.Store(false)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { // a Close mid-sweep abandons the stream promptly
		select {
		case <-m.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	// Discover what the fleet holds.
	remote := map[pipeline.StageKey]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range s.cluster.peersView() {
		if peer == s.cluster.self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			keys, err := s.fetchInventory(ctx, peer)
			if err != nil {
				return // a dead or lagging peer just contributes nothing
			}
			mu.Lock()
			for _, sk := range keys {
				remote[sk] = true
			}
			mu.Unlock()
		}(peer)
	}
	wg.Wait()

	// Gained: owned on the current ring but not held here.
	var gained []pipeline.StageKey
	for sk := range remote {
		if s.cluster.owns(sk.Stage, sk.Key) && !s.stages.Held(sk.Stage, sk.Key) {
			gained = append(gained, sk)
		}
	}
	// Lost: held here but no longer ours — counted, never deleted
	// (they still serve peer fetches until evicted naturally).
	var lost int64
	for _, sk := range s.stages.Inventory() {
		if !s.cluster.owns(sk.Stage, sk.Key) {
			lost++
		}
	}
	m.keysLost.Store(lost)
	m.rebalTotal.Store(int64(len(gained)))
	if len(gained) == 0 {
		return
	}

	// Stream with bounded concurrency through the ordinary fetch walk
	// (owner-first, hedged), installing into memory + disk.
	sem := make(chan struct{}, 4)
	for _, sk := range gained {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(sk pipeline.StageKey) {
			defer wg.Done()
			defer func() { <-sem }()
			defer m.rebalDone.Add(1)
			sealed, ok, err := s.cluster.fetch(ctx, sk.Stage, sk.Key)
			if err != nil || !ok {
				return // next sweep retries; a query meanwhile fetches or builds
			}
			if s.stages.Install(sk.Stage, sk.Key, sealed) == nil {
				m.rebalFetched.Add(1)
			}
		}(sk)
	}
	wg.Wait()
}

// fetchInventory reads one peer's /v1/cluster/keys.
func (s *Server) fetchInventory(ctx context.Context, peer string) ([]pipeline.StageKey, error) {
	rctx, cancel := context.WithTimeout(ctx, s.cluster.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peer+"/v1/cluster/keys", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, errBadRequest("inventory %s: status %d", peer, resp.StatusCode)
	}
	var out struct {
		Keys []pipeline.StageKey `json:"keys"`
	}
	// 8 MiB bounds ~100k inventory entries — far beyond any cache cap.
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out.Keys, nil
}

// leave gossips this node's obituary: called from BeginDrain so the
// fleet drops us by epoch bump instead of waiting out the lease.
func (s *Server) leaveCluster() {
	m := s.member
	if m == nil {
		return
	}
	m.dir.Leave()
	snap := m.dir.Snapshot()
	var wg sync.WaitGroup
	for _, peer := range m.dir.Alive() {
		if peer == s.cluster.self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			s.exchange(peer, snap) // best-effort; lease expiry is the backstop
		}(peer)
	}
	wg.Wait()
}

// --- replication ---

type repTask struct {
	stage, key string
	sealed     []byte
}

// replicator pushes freshly built artifacts to the other members of
// their replica set, asynchronously: the build path only enqueues.
// The queue drops (counted) under pressure — replication is an
// availability optimisation, and the rebalance sweep is the backstop
// that re-converges anything dropped.
type replicator struct {
	s     *Server
	tasks chan repTask
	done  chan struct{}
	wg    sync.WaitGroup
}

func newReplicator(s *Server) *replicator {
	r := &replicator{
		s:     s,
		tasks: make(chan repTask, 256),
		done:  make(chan struct{}),
	}
	for i := 0; i < 2; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// enqueue is the pipeline.Tiers.Replicate hook: never blocks.
func (r *replicator) enqueue(stage, key string, sealed []byte) {
	select {
	case r.tasks <- repTask{stage, key, sealed}:
	case <-r.done:
	default:
		r.s.cluster.replicaDropped.Add(1)
	}
}

func (r *replicator) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case t := <-r.tasks:
			r.push(t)
		}
	}
}

// push writes the artifact to every replica-set member but self. The
// set is computed at push time, not enqueue time, so a ring change in
// between targets the right nodes.
func (r *replicator) push(t repTask) {
	cl := r.s.cluster
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	for _, peer := range cl.replicaSet(t.stage, t.key) {
		if peer == cl.self {
			continue
		}
		cl.replicaPushes.Add(1)
		if err := cl.pushReplica(ctx, peer, t.stage, t.key, t.sealed); err != nil {
			cl.replicaPushErrs.Add(1)
		}
	}
}

func (r *replicator) close() {
	close(r.done)
	r.wg.Wait()
}
