package server

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/obs"
)

// WideEvent is the canonical per-request record: everything the access
// log, metrics, and trace know about one request, denormalized into a
// single JSONL line so one grep answers "where did this answer come
// from and what did it cost". Emission is head-sampled (1-in-N) with
// errors always emitted; the disabled path is a nil *wideEventLog plus
// a nil *obs.ReqStats, proven 0 allocs/op by tests.
type WideEvent struct {
	TS      string `json:"ts"`
	Route   string `json:"route"`
	Method  string `json:"method"`
	Status  int    `json:"status"`
	TraceID string `json:"trace_id,omitempty"`
	Remote  string `json:"remote,omitempty"`
	Query   string `json:"query,omitempty"`

	DurUs       int64 `json:"dur_us"`
	QueueWaitUs int64 `json:"queue_wait_us"`

	// Cache is the answer's provenance label (mem/disk/peer/built/
	// stale/none); Stages is the pipeline tier walk that produced it.
	Cache         string           `json:"cache,omitempty"`
	Stages        []obs.StageVisit `json:"stages,omitempty"`
	StagesDropped int              `json:"stages_dropped,omitempty"`
	StageBuilds   int              `json:"stage_builds"`
	BuildMs       float64          `json:"build_ms,omitempty"`
	PeerFills     int              `json:"peer_fills"`
	StalenessS    int64            `json:"staleness_s,omitempty"`

	// Process-level cost deltas sampled around the request. They are
	// honest about their scope: on a busy server concurrent requests
	// bleed into each other's deltas, but on a quiescent one they are
	// the request's own footprint.
	ProcAllocBytes   uint64 `json:"proc_alloc_bytes,omitempty"`
	ProcAllocObjects uint64 `json:"proc_alloc_objects,omitempty"`
	ProcCPUUs        int64  `json:"proc_cpu_us,omitempty"`

	// Sampled is false when the event was emitted because of an error
	// despite losing the head-sampling draw.
	Sampled bool `json:"sampled"`
}

// wideEventLog serializes wide events onto one writer. A nil receiver
// is the disabled log: shouldSample answers false and emit no-ops.
type wideEventLog struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	sample int64

	seq     atomic.Int64
	emitted atomic.Int64
}

// newWideEventLog builds the log; nil writer or sample < 1 disables
// head sampling down to errors-only (sample == 0 means "every request"
// is the caller's normalization concern; we clamp to >= 1).
func newWideEventLog(w io.Writer, sample int) *wideEventLog {
	if w == nil {
		return nil
	}
	if sample < 1 {
		sample = 1
	}
	return &wideEventLog{w: w, sample: int64(sample)}
}

// shouldSample makes the head-sampling decision for one request. The
// decision is taken at request START (head sampling) so the whole
// collection pipeline can be skipped for unsampled requests; errors
// override it at emission time.
func (l *wideEventLog) shouldSample() bool {
	if l == nil {
		return false
	}
	return l.seq.Add(1)%l.sample == 0
}

// emit marshals and writes one event. Write errors disable the log
// (first error wins) rather than stalling request handling.
func (l *wideEventLog) emit(ev *WideEvent) {
	if l == nil {
		return
	}
	enc, err := json.Marshal(ev)
	if err != nil {
		return
	}
	enc = append(enc, '\n')
	l.mu.Lock()
	if l.err == nil {
		_, l.err = l.w.Write(enc)
	}
	l.mu.Unlock()
	l.emitted.Add(1)
}

// Emitted reports how many wide events have been written.
func (l *wideEventLog) Emitted() int64 {
	if l == nil {
		return 0
	}
	return l.emitted.Load()
}

// cacheProvenance condenses a request's tier walk into the single
// label the access log and wide event carry: where the answer really
// came from. Stale wins (the registry answered from the last-good
// store); a memory-hit analyzer is "mem"; an analyzer rebuilt this
// request reports the deepest tier that fed the rebuild — peer beats
// disk beats built-from-scratch. Requests that never touched the
// pipeline report "none".
func cacheProvenance(rs *obs.ReqStats, stale bool) string {
	if stale {
		return "stale"
	}
	builds, mem, disk, peer, _ := rs.Counts()
	switch {
	case builds == 0 && mem == 0 && disk == 0 && peer == 0:
		return "none"
	case builds == 0 && disk == 0 && peer == 0:
		return "mem"
	case peer > 0:
		return "peer"
	case disk > 0:
		return "disk"
	default:
		return "built"
	}
}

// buildWideEvent assembles the event from what instrument observed.
func buildWideEvent(route string, r reqObservation, rs *obs.ReqStats) *WideEvent {
	visits, dropped := rs.Visits()
	builds, _, _, peer, buildNs := rs.Counts()
	ev := &WideEvent{
		TS:            r.start.UTC().Format(time.RFC3339Nano),
		Route:         route,
		Method:        r.method,
		Status:        r.status,
		TraceID:       r.traceID,
		Remote:        r.remote,
		Query:         r.query,
		DurUs:         r.dur.Microseconds(),
		QueueWaitUs:   r.queueWait.Microseconds(),
		Cache:         cacheProvenance(rs, r.stale),
		Stages:        visits,
		StagesDropped: dropped,
		StageBuilds:   builds,
		BuildMs:       float64(buildNs) / 1e6,
		PeerFills:     peer,
		StalenessS:    r.stalenessS,
		Sampled:       r.sampled,
	}
	ev.ProcAllocBytes = r.costEnd.allocBytes - r.costStart.allocBytes
	ev.ProcAllocObjects = r.costEnd.allocObjects - r.costStart.allocObjects
	ev.ProcCPUUs = r.costEnd.cpuUs - r.costStart.cpuUs
	return ev
}

// reqObservation is the bundle instrument hands to buildWideEvent.
type reqObservation struct {
	start      time.Time
	method     string
	query      string
	remote     string
	status     int
	traceID    string
	dur        time.Duration
	queueWait  time.Duration
	stale      bool
	stalenessS int64
	sampled    bool
	costStart  costSnapshot
	costEnd    costSnapshot
}
