package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"obdrel"
)

// cheap holds the query parameters that keep test builds fast; every
// request below appends it so the registry key is shared.
const cheap = "grid=6&mc_samples=50&stmc_samples=500"

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(opts).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %v: %s", url, err, body)
	}
	return out
}

func TestHealthzAndDesigns(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("healthz: %v", h)
	}
	d := getJSON(t, srv.URL+"/v1/designs", http.StatusOK)
	designs, ok := d["designs"].([]any)
	if !ok || len(designs) != 6 {
		t.Fatalf("designs: %v", d)
	}
}

func TestLifetimeQueryAndCaching(t *testing.T) {
	srv := newTestServer(t, Options{})
	url := srv.URL + "/v1/lifetime?design=C1&method=hybrid&ppm=10&" + cheap

	cold := getJSON(t, url, http.StatusOK)
	if cold["cache"] != "miss" {
		t.Fatalf("first query should miss: %v", cold)
	}
	life, ok := cold["lifetime_hours"].(float64)
	if !ok || !(life > 0) {
		t.Fatalf("lifetime_hours = %v", cold["lifetime_hours"])
	}

	warm := getJSON(t, url, http.StatusOK)
	if warm["cache"] != "hit" {
		t.Fatalf("second query should hit: %v", warm)
	}
	if warm["lifetime_hours"] != cold["lifetime_hours"] {
		t.Fatalf("warm answer differs: %v vs %v", warm["lifetime_hours"], cold["lifetime_hours"])
	}
	// Warm hybrid queries are table lookups; the acceptance bar is
	// ≤1 ms server-side.
	if qus, ok := warm["query_us"].(float64); !ok || qus > 1000 {
		t.Errorf("warm hybrid query took %v µs, want ≤1000", warm["query_us"])
	}
}

func TestFailureProbPOST(t *testing.T) {
	srv := newTestServer(t, Options{})
	body := `{"design":"C1","method":"st_fast","t":1e5,"config":{"grid":6,"mc_samples":50,"stmc_samples":500}}`
	resp, err := http.Post(srv.URL+"/v1/failureprob", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	p, ok := out["failure_prob"].(float64)
	if !ok || p < 0 || p > 1 {
		t.Fatalf("failure_prob = %v", out["failure_prob"])
	}
	if r := out["reliability"].(float64); r != 1-p {
		t.Fatalf("reliability %v != 1-p %v", r, 1-p)
	}
}

func TestBlocksRoute(t *testing.T) {
	srv := newTestServer(t, Options{})
	out := getJSON(t, srv.URL+"/v1/blocks?design=C1&"+cheap, http.StatusOK)
	blocks, ok := out["blocks"].([]any)
	if !ok || len(blocks) == 0 {
		t.Fatalf("blocks: %v", out)
	}
	b0 := blocks[0].(map[string]any)
	for _, k := range []string{"name", "mean_temp_c", "max_temp_c", "power_w", "alpha_h", "b_per_nm", "devices"} {
		if _, ok := b0[k]; !ok {
			t.Fatalf("block missing %q: %v", k, b0)
		}
	}
}

func TestMaxVDDRoute(t *testing.T) {
	srv := newTestServer(t, Options{})
	// A wide tolerance keeps the bisection to a handful of probes.
	url := srv.URL + "/v1/maxvdd?design=C1&method=hybrid&ppm=10&target_hours=1000&vlo=1.0&vhi=1.4&tolv=0.1&" + cheap
	out := getJSON(t, url, http.StatusOK)
	v, ok := out["max_vdd"].(float64)
	if !ok || v < 1.0 || v > 1.4 {
		t.Fatalf("max_vdd = %v", out["max_vdd"])
	}
	if probes, ok := out["probes"].(float64); !ok || probes < 1 {
		t.Fatalf("probes = %v", out["probes"])
	}
}

func TestBadInputs(t *testing.T) {
	srv := newTestServer(t, Options{})
	cases := []struct {
		name, url string
		status    int
	}{
		{"unknown design", "/v1/lifetime?design=C9", http.StatusNotFound},
		{"unknown method", "/v1/lifetime?design=C1&method=voodoo", http.StatusBadRequest},
		{"negative vdd", "/v1/lifetime?design=C1&vdd=-1&" + cheap, http.StatusBadRequest},
		{"NaN vdd", "/v1/lifetime?design=C1&vdd=NaN&" + cheap, http.StatusBadRequest},
		{"zero grid", "/v1/lifetime?design=C1&grid=0", http.StatusBadRequest},
		{"grid over cap", "/v1/lifetime?design=C1&grid=4096", http.StatusBadRequest},
		{"mc over cap", "/v1/lifetime?design=C1&mc_samples=1000000", http.StatusBadRequest},
		{"bad ppm", "/v1/lifetime?design=C1&ppm=2000000&" + cheap, http.StatusBadRequest},
		{"missing t", "/v1/failureprob?design=C1&" + cheap, http.StatusBadRequest},
		{"unparsable number", "/v1/lifetime?design=C1&vdd=banana", http.StatusBadRequest},
		{"bad target", "/v1/maxvdd?design=C1&target_hours=-5&" + cheap, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := getJSON(t, srv.URL+tc.url, tc.status)
			if msg, ok := out["error"].(string); !ok || msg == "" {
				t.Fatalf("no error message: %v", out)
			}
		})
	}

	resp, err := http.Post(srv.URL+"/v1/lifetime", "application/json", strings.NewReader(`{"unknown_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown JSON field: status %d, want 400", resp.StatusCode)
	}
}

func TestConcurrencyLimiter(t *testing.T) {
	block := make(chan struct{})
	s := New(Options{MaxConcurrent: 1, Build: func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		<-block
		return obdrel.NewAnalyzerCtx(ctx, d, cfg)
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer close(block)

	slow := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/lifetime?design=C1&" + cheap)
		if err != nil {
			slow <- 0
			return
		}
		resp.Body.Close()
		slow <- resp.StatusCode
	}()
	// Wait for the slow request to occupy the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.InFlight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/v1/lifetime?design=C1&" + cheap)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// healthz must stay reachable under saturation.
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", h.StatusCode)
	}
	block <- struct{}{}
	if code := <-slow; code != http.StatusOK {
		t.Fatalf("slow request finished %d, want 200", code)
	}
}

func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Options{RequestTimeout: 50 * time.Millisecond, Build: func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		select {
		case <-release:
			return obdrel.NewAnalyzerCtx(ctx, d, cfg)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/lifetime?design=C1&" + cheap)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 504; body: %s", resp.StatusCode, body)
	}
	if s.metrics.TimedOut.Load() != 1 {
		t.Fatalf("timed-out counter %d, want 1", s.metrics.TimedOut.Load())
	}
}

func TestMetricsExposition(t *testing.T) {
	srv := newTestServer(t, Options{})
	getJSON(t, srv.URL+"/v1/lifetime?design=C1&method=hybrid&"+cheap, http.StatusOK)
	getJSON(t, srv.URL+"/v1/lifetime?design=C1&method=hybrid&"+cheap, http.StatusOK)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`obdreld_requests_total{route="/v1/lifetime",code="200"} 2`,
		`obdreld_request_seconds_bucket{route="/v1/lifetime"`,
		"obdreld_analyzer_cache_hits_total 1",
		"obdreld_analyzer_cache_misses_total 1",
		"obdreld_engine_builds_total 1",
		"obdreld_engine_build_seconds_total",
		"obdreld_in_flight_requests",
		"obdreld_analyzers_cached 1",
		"obdreld_uptime_seconds",
		`obdreld_stage_cache_hits_total{stage="analyzer"} 1`,
		`obdreld_stage_builds_total{stage="analyzer"} 1`,
		`obdreld_stage_build_seconds_total{stage="analyzer"}`,
		`obdreld_stage_cache_misses_total{stage="thermal"}`,
		`obdreld_stage_entries{stage="pca"}`,
	} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAccessLog checks the structured per-request log line.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	srv := newTestServer(t, Options{AccessLog: &buf})
	getJSON(t, srv.URL+"/v1/designs", http.StatusOK)

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not JSON: %q", line)
	}
	if entry["route"] != "/v1/designs" || entry["status"] != float64(200) {
		t.Fatalf("log entry: %v", entry)
	}
	if _, ok := entry["dur_us"]; !ok {
		t.Fatalf("log entry missing dur_us: %v", entry)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMixedTrafficConcurrent hammers every route at once against one
// server — the serving-layer analogue of the library's concurrency
// tests, meaningful under -race.
func TestMixedTrafficConcurrent(t *testing.T) {
	srv := newTestServer(t, Options{MaxConcurrent: 64})
	urls := []string{
		srv.URL + "/v1/lifetime?design=C1&method=hybrid&" + cheap,
		srv.URL + "/v1/lifetime?design=C1&method=st_fast&" + cheap,
		srv.URL + "/v1/failureprob?design=C1&method=hybrid&t=1e5&" + cheap,
		srv.URL + "/v1/blocks?design=C1&" + cheap,
		srv.URL + "/v1/designs",
		srv.URL + "/healthz",
		srv.URL + "/metrics",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := urls[(w+i)%len(urls)]
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
