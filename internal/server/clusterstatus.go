package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"obdrel/internal/member"
	"obdrel/internal/obs"
)

// The fleet-status surface: every node serves its own compact stats
// document on /v1/cluster/stats, and any node aggregates the whole
// fleet on /v1/cluster/status by fanning out to its peers with a
// bounded timeout and merging the fixed-bucket histograms. Both are
// ops routes served OUTSIDE instrument: they must keep answering
// while the node drains (observability has to outlive the drain), and
// they never consume an admission slot.

// tierCounters is the node-level artifact telemetry in wire form.
type tierCounters struct {
	FetchAttempts int64 `json:"fetch_attempts"`
	FetchFills    int64 `json:"fetch_fills"`
	FetchErrors   int64 `json:"fetch_errors"`
	PeerServes    int64 `json:"peer_serves"`
	WarmLoaded    int64 `json:"warm_loaded"`
}

// routeStats is one route's share of a node's stats document.
type routeStats struct {
	Requests int64                 `json:"requests"`
	Latency  obs.HistogramSnapshot `json:"latency"`
}

// nodeStats is the compact per-node document served on
// GET /v1/cluster/stats. The membership fields are zero outside
// dynamic mode, and a mixed-version or mixed-epoch fleet decodes
// whatever subset each node reports — per-node data always survives.
type nodeStats struct {
	Node            string                `json:"node"`
	Healthy         bool                  `json:"healthy"`
	Draining        bool                  `json:"draining"`
	Warming         bool                  `json:"warming"`
	UptimeS         float64               `json:"uptime_s"`
	AnalyzersCached int                   `json:"analyzers_cached"`
	InFlight        int64                 `json:"in_flight"`
	Tiers           tierCounters          `json:"tiers"`
	Routes          map[string]routeStats `json:"routes"`

	// Dynamic-membership view (omitted in static/solo mode): this
	// node's epoch, replica factor, rebalance state, and its own
	// member directory with per-member states.
	Epoch       uint64        `json:"epoch,omitempty"`
	Replicas    int           `json:"replicas,omitempty"`
	Rebalancing bool          `json:"rebalancing,omitempty"`
	Members     []member.Info `json:"members,omitempty"`
}

// localNodeStats snapshots this node.
func (s *Server) localNodeStats() nodeStats {
	hists, reqs := s.metrics.RouteSnapshots()
	routes := make(map[string]routeStats, len(hists))
	for r, h := range hists {
		routes[r] = routeStats{Requests: reqs[r], Latency: h}
	}
	node := ""
	if s.cluster != nil {
		node = s.cluster.self
	}
	a := s.artifactStats()
	ns := nodeStats{
		Node:            node,
		Healthy:         true,
		Draining:        s.draining.Load(),
		Warming:         s.warming.Load(),
		UptimeS:         s.metrics.Uptime().Seconds(),
		AnalyzersCached: s.reg.Len(),
		InFlight:        s.metrics.InFlight.Load(),
		Tiers: tierCounters{
			FetchAttempts: a.FetchAttempts,
			FetchFills:    a.FetchFills,
			FetchErrors:   a.FetchErrors,
			PeerServes:    a.PeerServes,
			WarmLoaded:    a.WarmLoaded,
		},
		Routes: routes,
	}
	if m := s.member; m != nil {
		ns.Epoch = s.cluster.epochView()
		ns.Replicas = s.cluster.replicaFactor()
		ns.Rebalancing = m.rebalancing.Load()
		ns.Members = m.dir.Members()
	}
	return ns
}

// handleClusterStats serves this node's stats document to peers.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observeOps("/v1/cluster/stats", r, status, start, "") }()
	if r.Method != http.MethodGet {
		status = http.StatusMethodNotAllowed
		writeJSON(w, status, map[string]any{"error": "GET only"})
		return
	}
	writeJSON(w, status, s.localNodeStats())
}

// nodeStatsFrom fetches one peer's stats document.
func (cl *cluster) nodeStatsFrom(ctx context.Context, peer string) (nodeStats, error) {
	var ns nodeStats
	rctx, cancel := context.WithTimeout(ctx, cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peer+"/v1/cluster/stats", nil)
	if err != nil {
		return ns, err
	}
	resp, err := cl.client.Do(req)
	if err != nil {
		return ns, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ns, fmt.Errorf("peer %s: stats status %d", peer, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&ns); err != nil {
		return ns, fmt.Errorf("peer %s: stats decode: %v", peer, err)
	}
	return ns, nil
}

// nodeEntry is one node's row in the fleet status: its stats document,
// or — for a dead peer — the error that replaced it. Dead peers are
// REPORTED, never fatal: the whole point of the fan-out is to keep
// answering while the fleet degrades.
type nodeEntry struct {
	nodeStats
	Err string `json:"error,omitempty"`
}

// fleetQuantiles is a merged latency summary.
type fleetQuantiles struct {
	Requests int64   `json:"requests"`
	P50Us    float64 `json:"p50_us"`
	P95Us    float64 `json:"p95_us"`
	P99Us    float64 `json:"p99_us"`
	MaxUs    float64 `json:"max_us"`
	MeanUs   float64 `json:"mean_us"`
}

func quantilesOf(h *obs.Histogram, requests int64) fleetQuantiles {
	return fleetQuantiles{
		Requests: requests,
		P50Us:    float64(h.Quantile(0.50).Microseconds()),
		P95Us:    float64(h.Quantile(0.95).Microseconds()),
		P99Us:    float64(h.Quantile(0.99).Microseconds()),
		MaxUs:    float64(h.Max().Microseconds()),
		MeanUs:   float64(h.Mean().Microseconds()),
	}
}

// clusterStatusOut is the /v1/cluster/status document.
type clusterStatusOut struct {
	Self      string      `json:"self"`
	NodesOK   int         `json:"nodes_ok"`
	NodesDead int         `json:"nodes_dead"`
	Degraded  bool        `json:"degraded"`
	Nodes     []nodeEntry `json:"nodes"`
	// Fleet merges every healthy node's fixed-bucket histograms:
	// per-route and overall p50/p95/p99 over the pooled samples, with
	// the exact fleet-wide max preserved by Histogram.Merge.
	Fleet struct {
		Overall fleetQuantiles            `json:"overall"`
		Routes  map[string]fleetQuantiles `json:"routes"`
	} `json:"fleet"`
	// Ring is each node's exact share of the key space (empty outside
	// cluster mode), evaluated on THIS node's current ring — in
	// dynamic mode the shares are per-epoch, stamped with RingEpoch.
	Ring map[string]float64 `json:"ring,omitempty"`
	// Dynamic-membership fleet view: RingEpoch/Replicas are this
	// node's; Membership its directory with per-member states;
	// MixedEpochs is true when healthy nodes report different epochs —
	// the fleet is mid-convergence, so cross-node aggregates should be
	// read per-node rather than as one consistent ring. Mixed epochs
	// degrade reporting, never error.
	RingEpoch   uint64        `json:"ring_epoch,omitempty"`
	Replicas    int           `json:"replicas,omitempty"`
	Membership  []member.Info `json:"membership,omitempty"`
	MixedEpochs bool          `json:"mixed_epochs,omitempty"`
}

// clusterStatus assembles the fleet view: local stats directly, every
// peer in parallel under its bounded timeout.
func (s *Server) clusterStatus(ctx context.Context) clusterStatusOut {
	var out clusterStatusOut
	cl := s.cluster
	if cl == nil {
		// Degenerate single-node fleet: the same document shape, one
		// healthy node, no ring.
		out.Nodes = []nodeEntry{{nodeStats: s.localNodeStats()}}
	} else {
		out.Self = cl.self
		out.Ring = cl.ringView().shares()
		if s.member != nil {
			out.RingEpoch = cl.epochView()
			out.Replicas = cl.replicaFactor()
			out.Membership = s.member.dir.Members()
		}
		// The fan-out targets the CURRENT alive set: in dynamic mode
		// dead members are reported in Membership (with state "dead")
		// rather than probed, so a shrunken fleet does not pay a
		// timeout per tombstone on every status call.
		peers := cl.peersView()
		entries := make([]nodeEntry, len(peers))
		var wg sync.WaitGroup
		for i, peer := range peers {
			if peer == cl.self {
				entries[i] = nodeEntry{nodeStats: s.localNodeStats()}
				continue
			}
			wg.Add(1)
			go func(i int, peer string) {
				defer wg.Done()
				ns, err := cl.nodeStatsFrom(ctx, peer)
				if err != nil {
					entries[i] = nodeEntry{nodeStats: nodeStats{Node: peer}, Err: err.Error()}
					return
				}
				ns.Node = peer // trust our own membership list over the peer's self-report
				entries[i] = nodeEntry{nodeStats: ns}
			}(i, peer)
		}
		wg.Wait()
		out.Nodes = entries
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })

	overall := &obs.Histogram{}
	var overallReqs int64
	merged := map[string]*obs.Histogram{}
	mergedReqs := map[string]int64{}
	for _, n := range out.Nodes {
		if n.Err != "" {
			out.NodesDead++
			continue
		}
		out.NodesOK++
		for route, rs := range n.Routes {
			h := merged[route]
			if h == nil {
				h = &obs.Histogram{}
				merged[route] = h
			}
			// A snapshot with a foreign bucket layout (mixed-version
			// fleet) is skipped: the node stays reported, its samples
			// just do not pollute the fleet quantiles.
			if h.MergeSnapshot(rs.Latency) {
				overall.MergeSnapshot(rs.Latency)
				overallReqs += rs.Requests
				mergedReqs[route] += rs.Requests
			}
		}
	}
	out.Degraded = out.NodesDead > 0
	// Mixed-epoch detection: healthy dynamic nodes disagreeing on the
	// view epoch. Static nodes (epoch 0) never trip it.
	var seenEpoch uint64
	for _, n := range out.Nodes {
		if n.Err != "" || n.Epoch == 0 {
			continue
		}
		if seenEpoch == 0 {
			seenEpoch = n.Epoch
		} else if n.Epoch != seenEpoch {
			out.MixedEpochs = true
		}
	}
	out.Fleet.Overall = quantilesOf(overall, overallReqs)
	out.Fleet.Routes = make(map[string]fleetQuantiles, len(merged))
	for route, h := range merged {
		out.Fleet.Routes[route] = quantilesOf(h, mergedReqs[route])
	}
	return out
}

// handleClusterStatus serves the fleet aggregation. Always 200: a
// degraded fleet is an answer, not an error.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observeOps("/v1/cluster/status", r, status, start, "") }()
	if r.Method != http.MethodGet {
		status = http.StatusMethodNotAllowed
		writeJSON(w, status, map[string]any{"error": "GET only"})
		return
	}
	writeJSON(w, status, s.clusterStatus(r.Context()))
}

// observeOps records metrics, the SLO observation, and one access-log
// line for the ops routes served outside instrument (artifact serving,
// cluster stats).
func (s *Server) observeOps(route string, r *http.Request, status int, start time.Time, traceID string, extra ...slog.Attr) {
	d := time.Since(start)
	s.metrics.ObserveRequest(route, status, d)
	attrs := append([]slog.Attr{
		slog.String("method", r.Method),
		slog.String("route", route),
		slog.Int("status", status),
		slog.Int64("dur_us", d.Microseconds()),
		slog.String("remote", r.RemoteAddr),
		slog.String("trace_id", traceID),
	}, extra...)
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
	s.slo.Observe(route, status, d, traceID)
}
