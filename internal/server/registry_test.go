package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"obdrel"
)

func testConfig(seed int64) *obdrel.Config {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 6, 6
	cfg.MCSamples = 50
	cfg.StMCSamples = 500
	cfg.Seed = seed
	return cfg
}

// TestSingleflightBuild is the ISSUE 2 acceptance test: 64 concurrent
// requests for the same uncached configuration must trigger exactly
// one engine build, with the other 63 coalesced onto it.
func TestSingleflightBuild(t *testing.T) {
	var builds atomic.Int64
	gate := make(chan struct{})
	m := NewMetrics()
	reg := NewRegistry(4, func(d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		builds.Add(1)
		<-gate // hold every racer at the miss until all have arrived
		return obdrel.NewAnalyzer(d, cfg)
	}, m)

	const racers = 64
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(racers)
	results := make([]*obdrel.Analyzer, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			an, _, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1))
			results[i], errs[i] = an, err
		}(i)
	}
	started.Wait()
	// All 64 goroutines are launched; give the laggards a moment to
	// reach the registry before releasing the build.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("64 concurrent identical requests ran %d builds, want 1", n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("racer %d got a different analyzer instance", i)
		}
	}
	if got := m.Coalesced.Load(); got == 0 {
		t.Fatal("no coalesced requests recorded")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d analyzers, want 1", reg.Len())
	}
}

func TestRegistryHitAndEviction(t *testing.T) {
	var builds atomic.Int64
	m := NewMetrics()
	reg := NewRegistry(2, func(d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		builds.Add(1)
		return obdrel.NewAnalyzer(d, cfg)
	}, m)
	ctx := context.Background()
	d := obdrel.C1()

	if _, cached, err := reg.Get(ctx, d, testConfig(1)); err != nil || cached {
		t.Fatalf("first get: cached=%t err=%v", cached, err)
	}
	if _, cached, err := reg.Get(ctx, d, testConfig(1)); err != nil || !cached {
		t.Fatalf("second get should hit: cached=%t err=%v", cached, err)
	}
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Fatalf("hit/miss counters %d/%d, want 1/1", m.CacheHits.Load(), m.CacheMisses.Load())
	}

	// Two more distinct configs overflow the capacity-2 LRU; the
	// seed-1 entry (least recently used after the seed-2 insert) is
	// evicted and must rebuild on the next request.
	reg.Get(ctx, d, testConfig(2))
	reg.Get(ctx, d, testConfig(3))
	if reg.Len() != 2 {
		t.Fatalf("registry holds %d analyzers, want 2", reg.Len())
	}
	before := builds.Load()
	if _, cached, _ := reg.Get(ctx, d, testConfig(1)); cached {
		t.Fatal("evicted entry reported as cached")
	}
	if builds.Load() != before+1 {
		t.Fatal("evicted entry did not rebuild")
	}
}

func TestRegistryBuildError(t *testing.T) {
	boom := errors.New("boom")
	m := NewMetrics()
	reg := NewRegistry(2, func(d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		return nil, boom
	}, m)
	if _, _, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Failed builds are not cached.
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d analyzers after failed build", reg.Len())
	}
}

// TestRegistryContextTimeout verifies the deadline abandons the wait
// but not the build: the slow characterization completes in the
// background and serves the next request as a hit.
func TestRegistryContextTimeout(t *testing.T) {
	release := make(chan struct{})
	m := NewMetrics()
	reg := NewRegistry(2, func(d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		<-release
		return obdrel.NewAnalyzer(d, cfg)
	}, m)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := reg.Get(ctx, obdrel.C1(), testConfig(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	close(release)
	// The background build finishes and lands in the LRU.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if _, cached, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1)); err != nil || !cached {
		t.Fatalf("abandoned build not reused: cached=%t err=%v", cached, err)
	}
}
