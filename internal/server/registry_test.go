package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"obdrel"
)

func testConfig(seed int64) *obdrel.Config {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 6, 6
	cfg.MCSamples = 50
	cfg.StMCSamples = 500
	cfg.Seed = seed
	return cfg
}

// TestSingleflightBuild is the ISSUE 2 acceptance test: 64 concurrent
// requests for the same uncached configuration must trigger exactly
// one engine build, with the other 63 coalesced onto it.
func TestSingleflightBuild(t *testing.T) {
	var builds atomic.Int64
	gate := make(chan struct{})
	m := NewMetrics()
	reg := NewRegistry(4, func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		builds.Add(1)
		<-gate // hold every racer at the miss until all have arrived
		return obdrel.NewAnalyzerCtx(ctx, d, cfg)
	}, m)

	const racers = 64
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(racers)
	results := make([]*obdrel.Analyzer, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			an, _, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1))
			results[i], errs[i] = an, err
		}(i)
	}
	started.Wait()
	// All 64 goroutines are launched; give the laggards a moment to
	// reach the registry before releasing the build.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("64 concurrent identical requests ran %d builds, want 1", n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("racer %d got a different analyzer instance", i)
		}
	}
	if got := m.Coalesced.Load(); got == 0 {
		t.Fatal("no coalesced requests recorded")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d analyzers, want 1", reg.Len())
	}
}

func TestRegistryHitAndEviction(t *testing.T) {
	var builds atomic.Int64
	m := NewMetrics()
	reg := NewRegistry(2, func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		builds.Add(1)
		return obdrel.NewAnalyzerCtx(ctx, d, cfg)
	}, m)
	ctx := context.Background()
	d := obdrel.C1()

	if _, src, err := reg.Get(ctx, d, testConfig(1)); err != nil || src.Hit {
		t.Fatalf("first get: hit=%t err=%v", src.Hit, err)
	}
	if _, src, err := reg.Get(ctx, d, testConfig(1)); err != nil || !src.Hit {
		t.Fatalf("second get should hit: hit=%t err=%v", src.Hit, err)
	}
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Fatalf("hit/miss counters %d/%d, want 1/1", m.CacheHits.Load(), m.CacheMisses.Load())
	}

	// Two more distinct configs overflow the capacity-2 LRU; the
	// seed-1 entry (least recently used after the seed-2 insert) is
	// evicted and must rebuild on the next request.
	reg.Get(ctx, d, testConfig(2))
	reg.Get(ctx, d, testConfig(3))
	if reg.Len() != 2 {
		t.Fatalf("registry holds %d analyzers, want 2", reg.Len())
	}
	before := builds.Load()
	if _, src, _ := reg.Get(ctx, d, testConfig(1)); src.Hit {
		t.Fatal("evicted entry reported as cached")
	}
	if builds.Load() != before+1 {
		t.Fatal("evicted entry did not rebuild")
	}
}

func TestRegistryBuildError(t *testing.T) {
	boom := errors.New("boom")
	m := NewMetrics()
	reg := NewRegistry(2, func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		return nil, boom
	}, m)
	if _, _, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Failed builds are not cached.
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d analyzers after failed build", reg.Len())
	}
}

// TestRegistryContextTimeout pins the abandoned-build contract: when
// the only waiter's deadline expires, the registry cancels the build's
// context — the characterization stops instead of finishing (and
// leaking) in the background — the cancelled partial result is never
// cached, and the next request starts a fresh build.
func TestRegistryContextTimeout(t *testing.T) {
	canceled := make(chan struct{})
	var builds atomic.Int64
	m := NewMetrics()
	reg := NewRegistry(2, func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		if builds.Add(1) == 1 {
			// A "slow" first build: block until the registry cancels
			// us, proving the 504 propagates into the build context.
			<-ctx.Done()
			close(canceled)
			return nil, ctx.Err()
		}
		return obdrel.NewAnalyzerCtx(ctx, d, cfg)
	}, m)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := reg.Get(ctx, obdrel.C1(), testConfig(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned build was never cancelled")
	}

	// The cancellation is recorded and nothing was cached.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Stats().Cancels == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Stats().Cancels; got != 1 {
		t.Fatalf("cancelled-build counter %d, want 1", got)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d analyzers after a cancelled build", reg.Len())
	}

	// A fresh request is not poisoned by the cancelled flight: it
	// rebuilds from scratch and succeeds.
	if _, src, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1)); err != nil || src.Hit {
		t.Fatalf("rebuild after cancellation: hit=%t err=%v", src.Hit, err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (cancelled + fresh)", builds.Load())
	}
}

// TestRegistrySurvivorRetries pins the coalescing half of the
// cancellation contract: a waiter that joins a flight whose
// originator then abandons it must NOT receive the cancelled flight's
// context error — it retries with a fresh build and gets a real
// analyzer.
func TestRegistrySurvivorRetries(t *testing.T) {
	var builds atomic.Int64
	firstStarted := make(chan struct{})
	cancelSeen := make(chan struct{})
	hold := make(chan struct{})
	m := NewMetrics()
	reg := NewRegistry(2, func(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, error) {
		if builds.Add(1) == 1 {
			close(firstStarted)
			<-ctx.Done() // the originator's departure cancels us...
			close(cancelSeen)
			<-hold // ...but the flight stays joinable until released
			return nil, ctx.Err()
		}
		return obdrel.NewAnalyzerCtx(ctx, d, cfg)
	}, m)

	impatient, cancelImpatient := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := reg.Get(impatient, obdrel.C1(), testConfig(1))
		done <- err
	}()
	<-firstStarted
	cancelImpatient()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter err = %v, want context.Canceled", err)
	}
	<-cancelSeen // the last waiter's exit cancelled the build context

	// The survivor arrives while the cancelled flight is still
	// in-flight, joins it, sees it die of cancellation, and must
	// transparently retry with a fresh build.
	survivor := make(chan error, 1)
	go func() {
		an, _, err := reg.Get(context.Background(), obdrel.C1(), testConfig(1))
		if err == nil && an == nil {
			err = errors.New("nil analyzer without error")
		}
		survivor <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the survivor join the doomed flight
	close(hold)

	select {
	case err := <-survivor:
		if err != nil {
			t.Fatalf("surviving waiter received %v, want a fresh successful build", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("surviving waiter never completed")
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (cancelled + survivor's retry)", builds.Load())
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d analyzers, want 1", reg.Len())
	}
}
