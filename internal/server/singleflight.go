package server

import "sync"

// flightResult is what a coalesced call delivers to every waiter.
type flightResult struct {
	val    any
	err    error
	shared bool // true when this waiter joined an in-flight call
}

// flightGroup coalesces concurrent calls for the same key into one
// execution — the classic singleflight pattern, reimplemented on the
// standard library because the service must not add dependencies. The
// function runs in its own goroutine, so waiters that abandon the
// result (request timeout, client gone) do not cancel the work: the
// next request for the key finds it finished and cached.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int
}

// Do returns a channel that delivers fn's result for key. Concurrent
// callers with an equal key share a single execution of fn; the
// channel is buffered so an abandoned waiter leaks nothing.
func (g *flightGroup) Do(key string, fn func() (any, error)) <-chan flightResult {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		ch := make(chan flightResult, 1)
		go func() {
			<-c.done
			ch <- flightResult{val: c.val, err: c.err, shared: true}
		}()
		return ch
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	ch := make(chan flightResult, 1)
	go func() {
		c.val, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		ch <- flightResult{val: c.val, err: c.err, shared: false}
	}()
	return ch
}
