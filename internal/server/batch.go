package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"obdrel"
	"obdrel/internal/batch"
	"obdrel/internal/fault"
	"obdrel/internal/obs"
)

// This file implements POST /v1/batch: one request carries thousands
// of (design, config-delta, query) items as a JSON array; the
// response streams back as JSONL — a header line, one line per item
// in input order, and a trailer with the run's totals. The batch
// planner (internal/batch) canonicalizes each item's effective
// config, groups items by shared analyzer cache key so the substrate
// builds once per group, and evaluates groups with warm-path calls
// across the worker pool. Item failures are per-item lines with an
// honest fault class; they never abort the stream.

// batchItem is the wire form of one batch item. Query selects the
// question: "lifetime" (default), "failureprob", "maxvdd", or
// "trace" (telemetry replay — Trace carries the piecewise history).
// The remaining fields mirror the unary /v1 endpoints.
type batchItem struct {
	ID          string       `json:"id,omitempty"`
	Query       string       `json:"query,omitempty"`
	Design      string       `json:"design"`
	Method      string       `json:"method,omitempty"`
	PPM         float64      `json:"ppm,omitempty"`
	T           float64      `json:"t,omitempty"`
	TargetHours float64      `json:"target_hours,omitempty"`
	VLo         float64      `json:"vlo,omitempty"`
	VHi         float64      `json:"vhi,omitempty"`
	TolV        float64      `json:"tolv,omitempty"`
	Trace       obdrel.Trace `json:"trace,omitempty"`
	Config      configParams `json:"config,omitempty"`
}

// batchHeader is the stream's first line.
type batchHeader struct {
	Stream string `json:"stream"`
	Window int    `json:"window"`
}

// batchLine is one item's result line.
type batchLine struct {
	I      int    `json:"i"`
	ID     string `json:"id,omitempty"`
	OK     bool   `json:"ok"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	Class  string `json:"class,omitempty"`
}

// batchTrailer is the stream's last line. Done is false when the run
// ended early (malformed mid-stream item, item cap, deadline) — the
// per-item lines already emitted remain valid.
type batchTrailer struct {
	Done      bool    `json:"done"`
	Items     int64   `json:"items"`
	OK        int64   `json:"ok"`
	Errors    int64   `json:"errors"`
	Groups    int64   `json:"groups"`
	Reused    int64   `json:"reused"`
	Shared    int64   `json:"shared_evals"`
	Windows   int64   `json:"windows"`
	ElapsedUs float64 `json:"elapsed_us"`
	Error     string  `json:"error,omitempty"`
	Class     string  `json:"class,omitempty"`
}

// batchPrepared is a group's shared state: the analyzer serving every
// item in the group, with its registry provenance.
type batchPrepared struct {
	an  *obdrel.Analyzer
	src GetResult
}

const (
	// maxBatchWindow caps the per-request ?window override; the
	// window bounds server memory, so a client cannot raise it
	// without bound.
	maxBatchWindow = 4096
	// maxBatchBody bounds the request body; ~1 KB per item times the
	// default item cap, with headroom for verbose traces.
	maxBatchBody = 64 << 20
	// maxBatchIDLen truncates echoed item IDs so a hostile payload
	// cannot make the server buffer megabytes of identifiers.
	maxBatchIDLen = 64
)

// instrumentBatch wraps the batch stream handler with the same
// production envelope as instrument — method gate, drain gate,
// admission (one slot covers the whole stream), in-flight gauge,
// stream deadline, per-request fault injection, root span, panic
// containment, metrics, access log — minus the buffered-JSON response
// writing, which the handler replaces with chunked JSONL.
func (s *Server) instrumentBatch(route string) http.Handler {
	allow := []string{http.MethodPost}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := http.StatusOK
		traceID := ""
		defer func() {
			d := time.Since(start)
			s.metrics.ObserveRequest(route, status, d)
			s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("query", r.URL.RawQuery),
				slog.Int("status", status),
				slog.Int64("dur_us", d.Microseconds()),
				slog.String("remote", r.RemoteAddr),
				slog.String("trace_id", traceID),
			)
		}()

		if !methodAllowed(r.Method, allow) {
			status = writeMethodNotAllowed(w, r, route, allow)
			return
		}
		if s.draining.Load() {
			s.metrics.DrainRejected.Add(1)
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "5")
			writeJSON(w, status, map[string]any{"error": "server is draining for shutdown"})
			return
		}
		admitted, rejStatus := s.admit(w, r)
		if !admitted {
			status = rejStatus
			return
		}
		defer func() { <-s.sem }()
		enteredService := time.Now()
		defer func() { s.observeServiceTime(time.Since(enteredService)) }()

		s.metrics.InFlight.Add(1)
		defer s.metrics.InFlight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.opts.BatchTimeout)
		defer cancel()

		if s.opts.FaultHeader {
			if spec := r.Header.Get("X-Fault"); spec != "" {
				parsed, perr := fault.ParseSpec(spec)
				if perr != nil {
					status = http.StatusBadRequest
					writeJSON(w, status, map[string]any{"error": perr.Error()})
					return
				}
				ctx = fault.ContextWith(ctx, parsed.Injector(s.faultSeq.Add(1)))
			}
		}

		// Root span: the traceparent response header must be set here,
		// before the first streamed byte locks the headers.
		parentTID, parentSID, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		ctx, root := s.tracer.StartTrace(ctx, route, parentTID, parentSID)
		if root != nil {
			traceID = root.TraceID()
			w.Header().Set("traceparent", obs.Traceparent(root.TraceID(), root.ID()))
			root.SetAttr("http_method", r.Method)
		}

		func() {
			defer func() {
				if p := recover(); p != nil {
					// Mid-stream panic: the JSONL contract means we may
					// have already committed a 200; the missing trailer
					// tells the client the stream died.
					status = http.StatusInternalServerError
				}
			}()
			status = s.handleBatch(ctx, w, r)
		}()

		if root != nil {
			root.SetAttr("status", status)
			root.EndTrace()
		}
	})
}

// handleBatch runs one batch stream and returns the HTTP status it
// committed. Pre-stream failures (bad window parameter, a body that
// is not a JSON array) answer a buffered 400; once the header line is
// out the status is locked at 200 and every later failure is either a
// per-item error line or a done:false trailer.
func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	window := s.opts.BatchWindow
	if q := r.URL.Query().Get("window"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > maxBatchWindow {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("window must be an integer in [1, %d], got %q", maxBatchWindow, q),
			})
			return http.StatusBadRequest
		}
		window = v
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('[') {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "request body must be a JSON array of batch items",
		})
		return http.StatusBadRequest
	}

	start := time.Now()
	s.metrics.BatchRequests.Add(1)
	// Small windows interleave request-body reads with response
	// writes; without full duplex the HTTP/1 server closes the
	// unread body at the first write and later Decode calls fail.
	_ = http.NewResponseController(w).EnableFullDuplex()
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc.Encode(batchHeader{Stream: "obdrel-batch/1", Window: window})

	// ids echoes client item identifiers back on result lines;
	// truncated so the slice stays small even for huge batches.
	var ids []string
	n := 0
	src := func() (batch.Work, bool, error) {
		if !dec.More() {
			return batch.Work{}, false, nil
		}
		if n >= s.opts.BatchMaxItems {
			return batch.Work{}, false, fmt.Errorf("batch exceeds the %d-item cap", s.opts.BatchMaxItems)
		}
		var it batchItem
		if derr := dec.Decode(&it); derr != nil {
			return batch.Work{}, false, fmt.Errorf("item %d: bad JSON: %v", n, derr)
		}
		id := it.ID
		if len(id) > maxBatchIDLen {
			id = id[:maxBatchIDLen]
		}
		ids = append(ids, id)
		work := s.resolveBatchWork(n, &it)
		n++
		return work, true, nil
	}
	emit := func(res batch.Result) error {
		s.metrics.ObserveBatchItem(res.Err)
		line := batchLine{I: res.Index, ID: ids[res.Index], OK: res.Err == nil}
		if res.Err != nil {
			line.Error = res.Err.Error()
			line.Class = fault.ClassOf(res.Err).String()
		} else {
			line.Result = res.Value
		}
		return enc.Encode(line)
	}
	stats, runErr := batch.Run(ctx, src, emit, batch.Options{
		Window:  window,
		Workers: s.opts.Workers,
		Flush: func() {
			if flusher != nil {
				flusher.Flush()
			}
		},
	})
	s.metrics.BatchGroups.Add(stats.Groups)
	s.metrics.BatchReused.Add(stats.Reused)
	s.metrics.BatchSharedEvals.Add(stats.SharedEvals)

	trailer := batchTrailer{
		Done:      runErr == nil,
		Items:     stats.Items,
		OK:        stats.OK,
		Errors:    stats.Failed,
		Groups:    stats.Groups,
		Reused:    stats.Reused,
		Shared:    stats.SharedEvals,
		Windows:   stats.Windows,
		ElapsedUs: float64(time.Since(start).Nanoseconds()) / 1e3,
	}
	if runErr != nil {
		trailer.Error = runErr.Error()
		trailer.Class = fault.ClassOf(runErr).String()
	}
	enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
	s.metrics.BatchStreamBytes.Add(cw.n)
	return http.StatusOK
}

// resolveBatchWork canonicalizes one wire item into planner work: the
// effective config, the substrate grouping key, the once-per-group
// prepare, and the per-item eval. Resolution failures (unknown
// design, invalid config, missing required fields) become the item's
// error without planning.
func (s *Server) resolveBatchWork(index int, it *batchItem) batch.Work {
	fail := func(err error) batch.Work { return batch.Work{Index: index, Err: err} }
	d, cfg, m, err := s.resolve(&apiRequest{Design: it.Design, Method: it.Method, Config: it.Config})
	if err != nil {
		return fail(err)
	}
	ppm := it.PPM
	if ppm == 0 {
		ppm = 10
	}
	query := it.Query
	if query == "" {
		query = "lifetime"
	}

	// timed stamps a result with sub-µs query latency — the fleet
	// bench derives per-item percentiles from it, and integer µs
	// would floor warm-path queries to 0.
	timed := func(t0 time.Time, out map[string]any) map[string]any {
		out["query_us"] = float64(time.Since(t0).Nanoseconds()) / 1e3
		return out
	}
	// prepare builds (or fetches) the group's analyzer and, when the
	// query evaluates on a fixed engine, warms that engine so every
	// item in the group takes the zero-alloc path.
	prepare := func(get func(context.Context) (*obdrel.Analyzer, GetResult, error), warm bool) func(context.Context) (any, error) {
		return func(pctx context.Context) (any, error) {
			an, src, err := get(pctx)
			if err != nil {
				return nil, err
			}
			if warm {
				if err := an.Prepare(m); err != nil {
					return nil, queryErr(err)
				}
			}
			return &batchPrepared{an: an, src: src}, nil
		}
	}
	getBase := func(pctx context.Context) (*obdrel.Analyzer, GetResult, error) {
		return s.reg.Get(pctx, d, cfg)
	}

	switch query {
	case "lifetime":
		return batch.Work{
			Index:   index,
			Key:     obdrel.CacheKey(d, cfg),
			EvalKey: fmt.Sprintf("lifetime|m=%s|ppm=%g", m, ppm),
			Prepare: prepare(getBase, true),
			Eval: func(_ context.Context, prepared any) (any, error) {
				p := prepared.(*batchPrepared)
				t0 := time.Now()
				life, err := p.an.LifetimePPM(ppm, m)
				if err != nil {
					return nil, queryErr(err)
				}
				return timed(t0, map[string]any{
					"design": d.Name, "method": m.String(), "ppm": ppm,
					"lifetime_hours": life, "cache": p.src.Label(),
				}), nil
			},
		}
	case "failureprob":
		if !(it.T > 0) {
			return fail(errBadRequest("item %d: t (hours) must be positive, got %v", index, it.T))
		}
		t := it.T
		return batch.Work{
			Index:   index,
			Key:     obdrel.CacheKey(d, cfg),
			EvalKey: fmt.Sprintf("failureprob|m=%s|t=%g", m, t),
			Prepare: prepare(getBase, true),
			Eval: func(_ context.Context, prepared any) (any, error) {
				p := prepared.(*batchPrepared)
				t0 := time.Now()
				pf, err := p.an.FailureProb(t, m)
				if err != nil {
					return nil, queryErr(err)
				}
				return timed(t0, map[string]any{
					"design": d.Name, "method": m.String(), "t_hours": t,
					"failure_prob": pf, "reliability": 1 - pf, "cache": p.src.Label(),
				}), nil
			},
		}
	case "maxvdd":
		if !(it.TargetHours > 0) {
			return fail(errBadRequest("item %d: target_hours must be positive, got %v", index, it.TargetHours))
		}
		vLo, vHi := it.VLo, it.VHi
		if vLo == 0 {
			vLo = 0.9
		}
		if vHi == 0 {
			vHi = 1.5
		}
		target, tolV := it.TargetHours, it.TolV
		return batch.Work{
			Index:   index,
			Key:     obdrel.CacheKey(d, cfg),
			EvalKey: fmt.Sprintf("maxvdd|m=%s|ppm=%g|target=%g|vlo=%g|vhi=%g|tolv=%g", m, ppm, target, vLo, vHi, tolV),
			// The bisection's probe analyzers differ per voltage, so
			// the group prepare only warms the base substrate
			// (covariance/PCA/BLOD are voltage-independent and shared
			// by every probe through the stage cache).
			Prepare: prepare(getBase, false),
			Eval: func(ictx context.Context, _ any) (any, error) {
				t0 := time.Now()
				probes := 0
				factory := func(fctx context.Context, pd *obdrel.Design, pc *obdrel.Config) (*obdrel.Analyzer, error) {
					probes++
					an, _, err := s.reg.Get(fctx, pd, pc)
					return an, err
				}
				v, err := obdrel.MaxVDDFromCtx(ictx, factory, d, cfg, m, ppm, target, vLo, vHi, tolV)
				if err != nil {
					return nil, queryErr(err)
				}
				return timed(t0, map[string]any{
					"design": d.Name, "method": m.String(), "ppm": ppm,
					"target_hours": target, "max_vdd": v, "probes": probes,
				}), nil
			},
		}
	case "trace":
		if err := it.Trace.Validate(); err != nil {
			return fail(errBadRequest("item %d: %v", index, err))
		}
		tr := it.Trace
		t := it.T
		return batch.Work{
			Index:   index,
			Key:     obdrel.TraceCacheKey(d, cfg, tr),
			EvalKey: fmt.Sprintf("trace|m=%s|ppm=%g|t=%g", m, ppm, t),
			Prepare: prepare(func(pctx context.Context) (*obdrel.Analyzer, GetResult, error) {
				return s.reg.GetTrace(pctx, d, cfg, tr)
			}, true),
			Eval: func(_ context.Context, prepared any) (any, error) {
				p := prepared.(*batchPrepared)
				t0 := time.Now()
				out := map[string]any{
					"design": d.Name, "method": m.String(),
					"trace_hours": tr.TotalHours(), "cache": p.src.Label(),
				}
				if t > 0 {
					pf, err := p.an.FailureProb(t, m)
					if err != nil {
						return nil, queryErr(err)
					}
					out["t_hours"], out["failure_prob"] = t, pf
				} else {
					life, err := p.an.LifetimePPM(ppm, m)
					if err != nil {
						return nil, queryErr(err)
					}
					out["ppm"], out["lifetime_hours"] = ppm, life
				}
				return timed(t0, out), nil
			},
		}
	default:
		return fail(errBadRequest("item %d: unknown query %q (want lifetime, failureprob, maxvdd, or trace)", index, query))
	}
}
