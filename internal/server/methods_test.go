package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMethodNotAllowed drives every /v1 route with verbs outside its
// allow set and checks the RFC 9110 contract: 405 with an Allow
// header naming exactly the permitted methods.
func TestMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t, Options{})
	cases := []struct {
		route     string
		method    string
		wantAllow string
	}{
		{"/v1/designs", http.MethodPost, "GET"},
		{"/v1/designs", http.MethodDelete, "GET"},
		{"/v1/lifetime", http.MethodDelete, "GET, POST"},
		{"/v1/lifetime", http.MethodPut, "GET, POST"},
		{"/v1/failureprob", http.MethodDelete, "GET, POST"},
		{"/v1/maxvdd", http.MethodPatch, "GET, POST"},
		{"/v1/blocks", http.MethodDelete, "GET, POST"},
		{"/v1/batch", http.MethodGet, "POST"},
		{"/v1/batch", http.MethodDelete, "POST"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.route, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.route, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("status = %d, want 405; body: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("Allow"); got != tc.wantAllow {
				t.Fatalf("Allow = %q, want %q", got, tc.wantAllow)
			}
			if !strings.Contains(string(body), "not allowed") {
				t.Fatalf("body should explain the rejection: %s", body)
			}
		})
	}
}

// TestAllowedMethodsStillServe pins the gate's complement: the verbs
// in each allow set reach the handler (no false 405s).
func TestAllowedMethodsStillServe(t *testing.T) {
	srv := newTestServer(t, Options{})
	resp, err := http.Get(srv.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/designs = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/lifetime", "application/json",
		strings.NewReader(`{"design":"C1","method":"st_fast","config":{"grid":6,"mc_samples":50,"stmc_samples":500}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/lifetime = %d, want 200", resp.StatusCode)
	}
}
