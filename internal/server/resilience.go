package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// reqAnnot is the per-request annotation channel between the registry
// (which knows when it served stale) and instrument (which owns the
// response headers). It rides the request context.
type reqAnnot struct {
	mu       sync.Mutex
	stale    bool
	staleAge time.Duration
}

type annotKey struct{}

func withAnnot(ctx context.Context) (context.Context, *reqAnnot) {
	a := &reqAnnot{}
	return context.WithValue(ctx, annotKey{}, a), a
}

// annotateStale marks the request as served-stale; a no-op outside a
// server request (library callers carry no annotation).
func annotateStale(ctx context.Context, age time.Duration) {
	a, _ := ctx.Value(annotKey{}).(*reqAnnot)
	if a == nil {
		return
	}
	a.mu.Lock()
	a.stale, a.staleAge = true, age
	a.mu.Unlock()
}

func (a *reqAnnot) staleness() (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.staleAge, a.stale
}

// BeginDrain flips the server into draining mode: /readyz answers 503
// so load balancers stop routing here, and new /v1 requests are
// rejected 503 with Retry-After while in-flight ones finish. Call it
// BEFORE closing the listener so the readiness flip is observable.
// In dynamic cluster mode it also gossips this node's obituary (best
// effort, in the background) so the fleet drops it by epoch bump
// instead of waiting out the lease.
func (s *Server) BeginDrain() {
	if s.draining.Swap(true) {
		return
	}
	if s.member != nil {
		go s.leaveCluster()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// observeServiceTime feeds the admission controller's EWMA estimate of
// per-request service time (α = 1/8, atomic CAS — no lock on the hot
// path).
func (s *Server) observeServiceTime(d time.Duration) {
	n := d.Nanoseconds()
	for {
		old := s.ewmaServiceNs.Load()
		next := n
		if old > 0 {
			next = old + (n-old)/8
		}
		if s.ewmaServiceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimatedWait predicts how long a request entering the queue at
// position pos (1-based) will wait for an execution slot: pos requests
// ahead of or at this position drain at MaxConcurrent per service
// time.
func (s *Server) estimatedWait(pos int64) time.Duration {
	ewma := s.ewmaServiceNs.Load()
	if ewma <= 0 {
		return 0
	}
	slots := int64(s.opts.MaxConcurrent)
	if slots < 1 {
		slots = 1
	}
	return time.Duration(ewma * pos / slots)
}

// admit blocks until an execution slot frees, the request deadline
// budget is spent, or the client leaves. It returns (admitted, status):
// when admitted is false the response (503/429) has already been
// written. The caller must release s.sem when admitted.
//
// Reject-early: if the predicted queue wait already exceeds the
// request deadline, the request is refused immediately with 503 and a
// Retry-After estimating when capacity frees — failing in microseconds
// instead of holding the client for a doomed RequestTimeout.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (bool, int) {
	select {
	case s.sem <- struct{}{}:
		return true, 0
	default:
	}
	if s.opts.QueueDepth <= 0 {
		// Queueing disabled: the legacy immediate 429.
		s.metrics.Throttled.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": "server saturated, retry later"})
		return false, http.StatusTooManyRequests
	}
	pos := s.queueLen.Add(1)
	defer s.queueLen.Add(-1)
	if pos > int64(s.opts.QueueDepth) {
		s.metrics.Throttled.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": "admission queue full, retry later"})
		return false, http.StatusTooManyRequests
	}
	if est := s.estimatedWait(pos); est > s.opts.RequestTimeout {
		s.metrics.AdmissionRejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(est))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "predicted queue wait exceeds the request deadline",
		})
		return false, http.StatusServiceUnavailable
	}
	t := time.NewTimer(s.opts.RequestTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true, 0
	case <-t.C:
		s.metrics.AdmissionRejected.Add(1)
		s.metrics.QueueTimeouts.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.estimatedWait(s.queueLen.Load())))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no capacity within the request deadline",
		})
		return false, http.StatusServiceUnavailable
	case <-r.Context().Done():
		// The client left; nobody reads the response.
		return false, http.StatusServiceUnavailable
	}
}

// retryAfterSeconds renders a wait estimate as a Retry-After value
// (whole seconds, minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d/time.Second) + 1
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
