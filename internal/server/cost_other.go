//go:build !unix

package server

// processCPUUs has no portable fallback; the wide event reports a zero
// CPU delta on platforms without getrusage.
func processCPUUs() int64 { return 0 }
