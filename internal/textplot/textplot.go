// Package textplot renders small terminal visualizations — heat maps
// and log-scale line charts — used by the examples and the figure
// regeneration tool to make results inspectable without leaving the
// terminal. It is deliberately tiny: fixed-width ASCII output, no
// colors, no dependencies.
package textplot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// shades orders glyphs from cold to hot for heat maps.
var shades = []byte(" .:-=+*#%@")

// HeatMap renders a row-major field of nx×ny values as an ASCII map,
// hottest values darkest. Row 0 of the field is drawn at the bottom
// (Cartesian orientation, matching die coordinates). rowStride halves
// or thins rows for terminal aspect ratio; 0 selects 2.
func HeatMap(field []float64, nx, ny, rowStride int) (string, error) {
	if nx <= 0 || ny <= 0 || len(field) != nx*ny {
		return "", fmt.Errorf("textplot: field length %d does not match %d×%d", len(field), nx, ny)
	}
	if rowStride <= 0 {
		rowStride = 2
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range field {
		if math.IsNaN(v) {
			return "", errors.New("textplot: NaN in field")
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	var sb strings.Builder
	for iy := ny - 1; iy >= 0; iy -= rowStride {
		row := make([]byte, nx)
		for ix := 0; ix < nx; ix++ {
			f := 0.0
			if span > 0 {
				f = (field[iy*nx+ix] - min) / span
			}
			idx := int(f * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			row[ix] = shades[idx]
		}
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "scale: ' '=%.4g  '@'=%.4g\n", min, max)
	return sb.String(), nil
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// LinePlot renders one or more series on a width×height character
// canvas. Axes can be logarithmic; non-positive values are dropped on
// log axes. Each series is drawn with its marker (later series
// overdraw earlier ones where they collide).
func LinePlot(series []Series, width, height int, logX, logY bool) (string, error) {
	if width < 8 || height < 3 {
		return "", fmt.Errorf("textplot: canvas %d×%d too small", width, height)
	}
	if len(series) == 0 {
		return "", errors.New("textplot: no series")
	}
	tx := func(v float64) (float64, bool) {
		if logX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if logY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	// Find the transformed bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("textplot: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if !any {
		return "", errors.New("textplot: no drawable points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			cx := int((x - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			if cx < 0 || cx >= width || cy < 0 || cy >= height {
				continue
			}
			canvas[height-1-cy][cx] = marker
		}
	}
	var sb strings.Builder
	for _, row := range canvas {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	axis := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	fmt.Fprintf(&sb, "x: [%.4g, %.4g]  y: [%.4g, %.4g]\n",
		axis(xmin, logX), axis(xmax, logX), axis(ymin, logY), axis(ymax, logY))
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&sb, "  %c %s\n", marker, s.Name)
	}
	return sb.String(), nil
}
