package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatMapBasics(t *testing.T) {
	// 2×2 field: gradient from 0 to 3.
	out, err := HeatMap([]float64{0, 1, 2, 3}, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two rows + scale line
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Row 1 of the field (values 2, 3) must be printed first (top):
	// fractions 2/3 and 1 map to '*' and '@'; the bottom row's 0 and
	// 1/3 map to ' ' and '-' (1/3·9 rounds to exactly 3 in float64).
	if lines[0] != "|*@|" {
		t.Errorf("top row = %q", lines[0])
	}
	if lines[1] != "| -|" {
		t.Errorf("bottom row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "scale:") {
		t.Errorf("missing scale line: %q", lines[2])
	}
}

func TestHeatMapUniformField(t *testing.T) {
	out, err := HeatMap([]float64{5, 5, 5, 5}, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|  |") {
		t.Errorf("uniform field should render cold:\n%s", out)
	}
}

func TestHeatMapRowStride(t *testing.T) {
	field := make([]float64, 4*8)
	out, err := HeatMap(field, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 8 rows at stride 2 → 4 drawn rows + scale.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("stride-2 line count = %d:\n%s", got, out)
	}
}

func TestHeatMapValidation(t *testing.T) {
	if _, err := HeatMap([]float64{1, 2, 3}, 2, 2, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := HeatMap([]float64{1, math.NaN(), 3, 4}, 2, 2, 1); err == nil {
		t.Error("NaN should error")
	}
	if _, err := HeatMap(nil, 0, 0, 1); err == nil {
		t.Error("empty field should error")
	}
}

func TestLinePlotBasics(t *testing.T) {
	s := []Series{{
		Name: "line",
		X:    []float64{0, 1, 2, 3, 4},
		Y:    []float64{0, 1, 2, 3, 4},
	}}
	out, err := LinePlot(s, 20, 10, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("no markers drawn")
	}
	if !strings.Contains(out, "line") {
		t.Error("legend missing")
	}
	// A rising line puts a marker in the bottom-left and top-right.
	lines := strings.Split(out, "\n")
	if lines[9][1] != '*' {
		t.Errorf("bottom-left corner missing marker: %q", lines[9])
	}
	if lines[0][19+1] != '*' { // +1 for the leading border
		t.Errorf("top-right corner missing marker: %q", lines[0])
	}
}

func TestLinePlotLogAxes(t *testing.T) {
	s := []Series{{
		Name:   "decade",
		X:      []float64{1, 10, 100, 1000},
		Y:      []float64{1e-6, 1e-4, 1e-2, 1},
		Marker: 'o',
	}}
	out, err := LinePlot(s, 40, 10, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Log-log of an exact power law is a straight diagonal; check the
	// corner markers again.
	lines := strings.Split(out, "\n")
	if lines[9][1] != 'o' || lines[0][40] != 'o' {
		t.Errorf("log-log power law not diagonal:\n%s", out)
	}
	if !strings.Contains(out, "x: [1, 1000]") {
		t.Errorf("x axis label wrong:\n%s", out)
	}
}

func TestLinePlotDropsNonPositiveOnLog(t *testing.T) {
	s := []Series{{
		Name: "mixed",
		X:    []float64{-1, 0, 1, 10},
		Y:    []float64{1, 1, 1, 2},
	}}
	if _, err := LinePlot(s, 20, 5, true, false); err != nil {
		t.Fatalf("mixed-sign series on log axis should still plot: %v", err)
	}
	// All-invalid series must error.
	bad := []Series{{Name: "neg", X: []float64{-1, -2}, Y: []float64{1, 1}}}
	if _, err := LinePlot(bad, 20, 5, true, false); err == nil {
		t.Error("no drawable points should error")
	}
}

func TestLinePlotMultipleSeries(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}, Marker: 'a'},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}, Marker: 'b'},
	}
	out, err := LinePlot(s, 16, 6, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("missing series markers")
	}
}

func TestLinePlotValidation(t *testing.T) {
	if _, err := LinePlot(nil, 20, 5, false, false); err == nil {
		t.Error("no series should error")
	}
	if _, err := LinePlot([]Series{{Name: "x", X: []float64{1}, Y: []float64{}}}, 20, 5, false, false); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := LinePlot([]Series{{Name: "x", X: []float64{1}, Y: []float64{1}}}, 2, 2, false, false); err == nil {
		t.Error("tiny canvas should error")
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	// Degenerate (single-point) ranges must not divide by zero.
	s := []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}
	if _, err := LinePlot(s, 20, 5, false, false); err != nil {
		t.Fatalf("single point should plot: %v", err)
	}
}
