package thermal

import (
	"math"
	"testing"

	"obdrel/internal/floorplan"
)

func solveWorkers(t *testing.T, workers int) *Field {
	t.Helper()
	d := floorplan.C6()
	s := DefaultSolver()
	s.Workers = workers
	powers := make([]float64, len(d.Blocks))
	for i := range powers {
		powers[i] = 2 + float64(i)
	}
	f, err := s.Solve(d, powers)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRedBlackMatchesSerial: the red-black ordering converges to the
// same steady state as the legacy lexicographic sweep; the two differ
// only by where each stops inside the convergence tolerance. 1e-4 K is
// far tighter than any temperature difference that matters to the
// reliability model (block temperatures are used at ~0.1 K fidelity).
func TestRedBlackMatchesSerial(t *testing.T) {
	serial := solveWorkers(t, 1)
	parallel := solveWorkers(t, 4)
	for i := range serial.Temps {
		if d := math.Abs(serial.Temps[i] - parallel.Temps[i]); d > 1e-4 {
			t.Fatalf("cell %d: serial %.9f vs red-black %.9f (Δ %.2g K)",
				i, serial.Temps[i], parallel.Temps[i], d)
		}
	}
}

// TestRedBlackWorkerDeterminism: within a red-black phase every cell
// reads only opposite-color neighbours, so the solution is
// bit-identical for every worker count ≥ 2.
func TestRedBlackWorkerDeterminism(t *testing.T) {
	ref := solveWorkers(t, 2)
	for _, w := range []int{3, 5, 11} {
		f := solveWorkers(t, w)
		if f.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: %d iterations vs %d", w, f.Iterations, ref.Iterations)
		}
		for i := range ref.Temps {
			if f.Temps[i] != ref.Temps[i] {
				t.Fatalf("workers=%d cell %d: %v != %v", w, i, f.Temps[i], ref.Temps[i])
			}
		}
	}
}

// TestRedBlackEnergyBalance: the parallel solution still conserves
// energy — the physical invariant the serial solver is tested on.
func TestRedBlackEnergyBalance(t *testing.T) {
	d := floorplan.C6()
	s := DefaultSolver()
	s.Workers = 4
	powers := make([]float64, len(d.Blocks))
	total := 0.0
	for i := range powers {
		powers[i] = 3
		total += 3
	}
	f, err := s.Solve(d, powers)
	if err != nil {
		t.Fatal(err)
	}
	if imb := f.EnergyBalance(s, total); imb > 1e-4 {
		t.Fatalf("energy imbalance %v", imb)
	}
}
