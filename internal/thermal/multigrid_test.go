package thermal

import (
	"fmt"
	"math"
	"testing"

	"obdrel/internal/floorplan"
)

// fixtureDesigns are the floorplans the equivalence tests sweep: every
// benchmark die plus the synthetic corner cases the unit tests use.
func fixtureDesigns() []*floorplan.Design {
	return []*floorplan.Design{
		floorplan.C1(), floorplan.C2(), floorplan.C3(),
		floorplan.C4(), floorplan.C5(), floorplan.C6(),
		uniformDesign(),
	}
}

func fixturePowers(d *floorplan.Design) []float64 {
	p := make([]float64, len(d.Blocks))
	for i := range p {
		p[i] = 1.5 + float64(i%5)
	}
	return p
}

// TestMultigridMatchesSOR: both methods solve the same linear system,
// so at a tight tolerance their fields agree everywhere. This is the
// tentpole's equivalence gate, swept over every design fixture.
func TestMultigridMatchesSOR(t *testing.T) {
	for _, d := range fixtureDesigns() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			powers := fixturePowers(d)
			mk := func(method string) *Solver {
				s := DefaultSolver()
				s.Method = method
				s.Tol = 1e-9
				s.MaxIter = 200000
				return s
			}
			fs, err := mk(MethodSOR).Solve(d, powers)
			if err != nil {
				t.Fatal(err)
			}
			fm, err := mk(MethodMultigrid).Solve(d, powers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range fs.Temps {
				if diff := math.Abs(fs.Temps[i] - fm.Temps[i]); diff > 1e-6 {
					t.Fatalf("cell %d: sor %v vs multigrid %v (diff %v)", i, fs.Temps[i], fm.Temps[i], diff)
				}
			}
		})
	}
}

// TestMultigridBitStableAcrossWorkers: the red-black smoothing order is
// the same at every worker count, so the solved field must be
// bit-identical — stronger than SOR's ≥2-only guarantee.
func TestMultigridBitStableAcrossWorkers(t *testing.T) {
	d := floorplan.C6()
	powers := fixturePowers(d)
	var ref *Field
	for _, w := range []int{1, 2, 3, 5, 8} {
		s := DefaultSolver()
		s.Method = MethodMultigrid
		s.Workers = w
		f, err := s.Solve(d, powers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		if f.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: %d cycles vs %d at workers=1", w, f.Iterations, ref.Iterations)
		}
		for i := range f.Temps {
			if f.Temps[i] != ref.Temps[i] {
				t.Fatalf("workers=%d: cell %d = %v, workers=1 = %v (not bit-identical)",
					w, i, f.Temps[i], ref.Temps[i])
			}
		}
	}
}

// TestMultigridGridRefinement is the O(N) scaling property: the
// V-cycle count stays essentially flat as the grid refines (SOR's
// sweep count grows super-linearly), and the solved physics converge
// to the same continuum answer.
func TestMultigridGridRefinement(t *testing.T) {
	d := floorplan.C6()
	powers := fixturePowers(d)
	var cycles []int
	var maxT []float64
	for _, n := range []int{25, 50, 100, 200} {
		s := &Solver{Nx: n, Ny: n, GVertical: 1.3, GLateral: 0.10, TAmbient: 45, Method: MethodMultigrid}
		f, err := s.Solve(d, powers)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		_, mx := f.MinMax()
		cycles = append(cycles, f.Iterations)
		maxT = append(maxT, mx)
	}
	// Cycle counts must not grow with resolution beyond a small
	// constant factor — that is what makes the total cost O(N).
	for i := 1; i < len(cycles); i++ {
		if cycles[i] > 2*cycles[0] {
			t.Errorf("cycles grew with resolution: %v", cycles)
		}
	}
	// The discretizations converge: successive refinements' hotspot
	// temperatures approach each other.
	d1 := math.Abs(maxT[1] - maxT[0])
	d3 := math.Abs(maxT[3] - maxT[2])
	if d3 > d1+1e-9 {
		t.Errorf("refinement not converging: hotspot deltas %v then %v (maxT %v)", d1, d3, maxT)
	}
}

// TestMultigridSmallGrids covers the degenerate hierarchies: grids at
// or below the direct-solve threshold (single level) and non-square,
// odd, and one-dimensional shapes.
func TestMultigridSmallGrids(t *testing.T) {
	d := uniformDesign()
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {8, 8}, {7, 13}, {1, 40}, {33, 9}} {
		s := &Solver{Nx: dims[0], Ny: dims[1], GVertical: 1.3, GLateral: 0.10, TAmbient: 45, Method: MethodMultigrid}
		f, err := s.Solve(d, []float64{10})
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		// Uniform power: every cell at T_amb + P/G_vertical.
		want := s.TAmbient + 10/s.GVertical
		min, max := f.MinMax()
		if !approx(min, want, 1e-4) || !approx(max, want, 1e-4) {
			t.Errorf("%dx%d: field [%v, %v], want %v", dims[0], dims[1], min, max, want)
		}
	}
}

// TestMultigridZeroLateral: gl = 0 decouples the cells; the system is
// diagonal and multigrid must still solve it.
func TestMultigridZeroLateral(t *testing.T) {
	s := DefaultSolver()
	s.GLateral = 0
	s.Method = MethodMultigrid
	f, err := s.Solve(uniformDesign(), []float64{13})
	if err != nil {
		t.Fatal(err)
	}
	want := s.TAmbient + 13/s.GVertical
	min, max := f.MinMax()
	if !approx(min, want, 1e-6) || !approx(max, want, 1e-6) {
		t.Errorf("field [%v, %v], want %v", min, max, want)
	}
}

// TestSolverMethodValidation: unknown methods are rejected, known ones
// (and the empty default) accepted.
func TestSolverMethodValidation(t *testing.T) {
	for _, m := range []string{"", MethodSOR, MethodMultigrid} {
		s := DefaultSolver()
		s.Method = m
		if err := s.Validate(); err != nil {
			t.Errorf("method %q: %v", m, err)
		}
	}
	s := DefaultSolver()
	s.Method = "jacobi"
	if err := s.Validate(); err == nil {
		t.Error("unknown method should fail validation")
	}
	if DefaultSolver().ResolvedMethod() != MethodMultigrid {
		t.Error("empty method should resolve to multigrid")
	}
}

// TestFieldAtExactEdge is the boundary-lookup regression: a query
// exactly on the east/north chip edge computes ix == Nx / iy == Ny and
// must clamp into the last cell instead of reading out of range.
func TestFieldAtExactEdge(t *testing.T) {
	s := DefaultSolver()
	d := uniformDesign()
	f, err := s.Solve(d, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	last := f.At(float64(f.Nx-1)/float64(f.Nx)*d.W+1e-9, float64(f.Ny-1)/float64(f.Ny)*d.H+1e-9)
	if got := f.At(d.W, d.H); got != last {
		t.Errorf("At(W, H) = %v, want last cell %v", got, last)
	}
	if got := f.At(d.W, 0); got != f.At(d.W-1e-9, 0) {
		t.Errorf("At(W, 0) = %v, want east-edge cell %v", got, f.At(d.W-1e-9, 0))
	}
	if got := f.At(0, d.H); got != f.At(0, d.H-1e-9) {
		t.Errorf("At(0, H) = %v, want north-edge cell %v", got, f.At(0, d.H-1e-9))
	}
}

// TestCoupledScratchReuseMatches: the scratch-reusing coupled loop must
// produce the same result as composing SolveCtx calls by hand.
func TestCoupledScratchReuseMatches(t *testing.T) {
	s := DefaultSolver()
	d := floorplan.C6()
	powers := fixturePowers(d)
	res, err := s.SolveCoupled(d, func(temps []float64) ([]float64, error) {
		// Mildly temperature-dependent power, like leakage.
		p := make([]float64, len(powers))
		for i := range p {
			p[i] = powers[i] * (1 + 0.001*(temps[i]-s.TAmbient))
		}
		return p, nil
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One more standalone solve at the converged powers must reproduce
	// the coupled field exactly (the state resets per round).
	f, err := s.Solve(d, res.Powers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Temps {
		if f.Temps[i] != res.Field.Temps[i] {
			t.Fatalf("cell %d: coupled %v vs standalone %v", i, res.Field.Temps[i], f.Temps[i])
		}
	}
}

func benchmarkSolve(b *testing.B, method string, n int) {
	d := floorplan.C6()
	powers := fixturePowers(d)
	s := &Solver{Nx: n, Ny: n, GVertical: 1.3, GLateral: 0.10, TAmbient: 45, Method: method}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(d, powers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveMethods(b *testing.B) {
	for _, n := range []int{25, 50, 100} {
		for _, m := range []string{MethodSOR, MethodMultigrid} {
			b.Run(fmt.Sprintf("%s/%d", m, n), func(b *testing.B) {
				benchmarkSolve(b, m, n)
			})
		}
	}
}
