// Package thermal is a HotSpot-style steady-state thermal solver. The
// die is discretized into cells; each cell exchanges heat laterally
// with its four neighbours through silicon conduction and vertically
// with the ambient through the package/heat-sink stack:
//
//	gV·(T_c - T_amb) + Σ_n gL·(T_c - T_n) = P_c
//
// The sparse linear system is solved either by geometric multigrid
// (the default — O(N) in the cell count, see multigrid.go) or by
// successive over-relaxation (the legacy method). The result is the
// block-structured temperature field of Fig. 1: globally uneven
// (hotspots over execution units), locally uniform within a
// functional block — exactly the structure the paper's "block"
// definition relies on.
package thermal

import (
	"context"
	"errors"
	"fmt"
	"math"

	"obdrel/internal/floorplan"
	"obdrel/internal/obs"
	"obdrel/internal/par"
)

// Solver holds the discretization and package parameters.
type Solver struct {
	// Nx, Ny is the cell resolution of the thermal grid.
	Nx, Ny int
	// GVertical is the total die-to-ambient thermal conductance (W/K)
	// distributed uniformly over the cells.
	GVertical float64
	// GLateral is the cell-to-cell conductance between adjacent cells
	// (W/K); it controls how far hotspots spread.
	GLateral float64
	// TAmbient is the ambient temperature (°C).
	TAmbient float64
	// Method selects the linear solver: "multigrid" (also the default
	// when empty) runs the geometric V-cycle of multigrid.go, whose
	// cost per digit of accuracy is O(Nx·Ny); "sor" runs the legacy
	// successive over-relaxation sweep, whose iteration count grows
	// super-linearly with resolution. Both converge to the same linear
	// system's solution, so they agree within the convergence
	// tolerance Tol.
	Method string
	// Omega is the SOR relaxation factor in (0, 2); 0 selects the
	// default 1.85. Multigrid ignores it (its smoother is plain
	// Gauss–Seidel).
	Omega float64
	// Tol is the convergence tolerance on the max temperature update
	// per sweep (SOR) or per V-cycle (multigrid), in K; 0 selects 1e-7.
	Tol float64
	// MaxIter bounds the SOR sweeps or multigrid V-cycles; 0 selects
	// 20000.
	MaxIter int
	// Workers selects the solve parallelism: 0 uses GOMAXPROCS and
	// ≥ 1 that many workers. For SOR, 1 is the exact legacy
	// lexicographic Gauss–Seidel sweep and ≥ 2 a red-black
	// (checkerboard) sweep whose row updates fan out over the workers;
	// within a red-black phase every cell reads only opposite-color
	// neighbours, so the parallel solution is bit-identical for every
	// worker count ≥ 2. Multigrid uses the red-black ordering at every
	// worker count, so its result is bit-identical for ALL worker
	// counts, including 1.
	Workers int
}

// DefaultSolver returns the solver calibrated for the normalized 1×1
// benchmark dies: the EV6-like C6 design (~44 W converged power)
// settles at a ~72 °C average with ~28 K of across-die spread and a
// ~88 °C hotspot over the integer execution unit, matching the
// profile magnitudes the paper quotes from HotSpot (Fig. 1).
func DefaultSolver() *Solver {
	return &Solver{
		Nx: 32, Ny: 32,
		GVertical: 1.3,
		GLateral:  0.10,
		TAmbient:  45,
	}
}

// Validate checks the solver parameters.
func (s *Solver) Validate() error {
	switch {
	case s.Nx <= 0 || s.Ny <= 0:
		return fmt.Errorf("thermal: invalid resolution %d×%d", s.Nx, s.Ny)
	case !(s.GVertical > 0):
		return errors.New("thermal: vertical conductance must be positive")
	case s.GLateral < 0:
		return errors.New("thermal: lateral conductance must be non-negative")
	case s.Omega < 0 || s.Omega >= 2:
		return errors.New("thermal: SOR omega must be in [0, 2)")
	case s.Method != "" && s.Method != MethodSOR && s.Method != MethodMultigrid:
		return fmt.Errorf("thermal: unknown solver method %q", s.Method)
	}
	return nil
}

// Solver method names accepted by Solver.Method.
const (
	MethodSOR       = "sor"
	MethodMultigrid = "multigrid"
)

// ResolvedMethod returns the solver method after applying the default:
// an empty Method selects multigrid. Fingerprinting uses this so that
// an explicit "multigrid" and the default produce the same stage key.
func (s *Solver) ResolvedMethod() string {
	if s.Method == "" {
		return MethodMultigrid
	}
	return s.Method
}

// Field is a solved temperature map.
type Field struct {
	Nx, Ny int
	W, H   float64
	// Temps holds cell temperatures (°C), row-major with index
	// iy*Nx + ix.
	Temps []float64
	// Iterations is the number of SOR sweeps or multigrid V-cycles
	// used.
	Iterations int
}

// At returns the temperature of the cell containing (x, y), clamping
// coordinates onto the die. A query exactly on the east or north chip
// edge (x == W or y == H) computes ix == Nx / iy == Ny and is clamped
// into the last cell, like any out-of-range coordinate.
func (f *Field) At(x, y float64) float64 {
	ix := int(x / f.W * float64(f.Nx))
	iy := int(y / f.H * float64(f.Ny))
	if ix < 0 {
		ix = 0
	}
	if ix >= f.Nx {
		ix = f.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= f.Ny {
		iy = f.Ny - 1
	}
	return f.Temps[iy*f.Nx+ix]
}

// MinMax returns the extreme cell temperatures.
func (f *Field) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, t := range f.Temps {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return min, max
}

// Mean returns the average cell temperature.
func (f *Field) Mean() float64 {
	s := 0.0
	for _, t := range f.Temps {
		s += t
	}
	return s / float64(len(f.Temps))
}

// Solve computes the steady-state temperature field for a design with
// the given per-block powers (one entry per design block, in watts).
func (s *Solver) Solve(d *floorplan.Design, blockPowers []float64) (*Field, error) {
	return s.SolveCtx(context.Background(), d, blockPowers)
}

// SolveCtx is Solve with a cancellation checkpoint at every sweep (SOR)
// or V-cycle (multigrid): once ctx expires the solve stops and returns
// ctx's error. The checkpoint granularity is O(Nx·Ny) cell updates —
// microseconds at the supported resolutions.
func (s *Solver) SolveCtx(ctx context.Context, d *floorplan.Design, blockPowers []float64) (*Field, error) {
	st, err := s.newSolveState(d)
	if err != nil {
		return nil, err
	}
	if err := st.run(ctx, blockPowers); err != nil {
		return nil, err
	}
	return st.field(), nil
}

// solveState holds the scratch of one solver instance bound to a die:
// the per-cell power and temperature arrays plus the method-specific
// state (multigrid level hierarchy). SolveCoupledCtx builds one state
// and reuses it across fixed-point rounds, so the cold-build profile
// pays the allocations once instead of once per round.
type solveState struct {
	s *Solver
	d *floorplan.Design

	// Resolved knobs.
	omega, tol float64
	maxIter    int
	method     string
	workers    int

	nc        int
	cellPower []float64
	temps     []float64
	rowMax    []float64 // per-row update maxima (SOR red-black)

	mg *mgState // lazily built on the first multigrid run

	iterations int
	lastDelta  float64
}

// newSolveState validates the solver and allocates the per-die scratch.
func (s *Solver) newSolveState(d *floorplan.Design) (*solveState, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st := &solveState{
		s:       s,
		d:       d,
		omega:   s.Omega,
		tol:     s.Tol,
		maxIter: s.MaxIter,
		method:  s.ResolvedMethod(),
		workers: par.Resolve(s.Workers, s.Ny),
		nc:      s.Nx * s.Ny,
	}
	if st.omega == 0 {
		st.omega = 1.85
	}
	if st.tol == 0 {
		st.tol = 1e-7
	}
	if st.maxIter == 0 {
		st.maxIter = 20000
	}
	st.cellPower = make([]float64, st.nc)
	st.temps = make([]float64, st.nc)
	return st, nil
}

// fillCellPower distributes the block powers over the cells each block
// overlaps, proportionally to the overlap area, resetting the scratch
// first so the state can be reused across solves.
func (st *solveState) fillCellPower(blockPowers []float64) error {
	s, d := st.s, st.d
	if len(blockPowers) != len(d.Blocks) {
		return fmt.Errorf("thermal: %d powers for %d blocks", len(blockPowers), len(d.Blocks))
	}
	for i := range st.cellPower {
		st.cellPower[i] = 0
	}
	cw := d.W / float64(s.Nx)
	ch := d.H / float64(s.Ny)
	for bi := range d.Blocks {
		b := &d.Blocks[bi]
		if blockPowers[bi] < 0 {
			return fmt.Errorf("thermal: negative power for block %q", b.Name)
		}
		density := blockPowers[bi] / b.Area()
		ix0 := int(math.Floor(b.X / cw))
		ix1 := int(math.Ceil((b.X + b.W) / cw))
		iy0 := int(math.Floor(b.Y / ch))
		iy1 := int(math.Ceil((b.Y + b.H) / ch))
		for iy := clampInt(iy0, 0, s.Ny-1); iy <= clampInt(iy1, 0, s.Ny-1); iy++ {
			for ix := clampInt(ix0, 0, s.Nx-1); ix <= clampInt(ix1, 0, s.Nx-1); ix++ {
				ox := overlap1D(b.X, b.X+b.W, float64(ix)*cw, float64(ix+1)*cw)
				oy := overlap1D(b.Y, b.Y+b.H, float64(iy)*ch, float64(iy+1)*ch)
				if ox > 0 && oy > 0 {
					st.cellPower[iy*s.Nx+ix] += density * ox * oy
				}
			}
		}
	}
	return nil
}

// run solves one steady state into st.temps. The temperature scratch is
// reset to ambient first, so repeated runs are independent (each round
// of the coupled fixed point sees the exact cold-start iteration, as
// the pre-reuse code did).
func (st *solveState) run(ctx context.Context, blockPowers []float64) error {
	if err := st.fillCellPower(blockPowers); err != nil {
		return err
	}
	for i := range st.temps {
		st.temps[i] = st.s.TAmbient
	}
	if st.method == MethodMultigrid {
		return st.runMultigrid(ctx)
	}
	return st.runSOR(ctx)
}

// field wraps the solved temperatures. The Field aliases the state's
// scratch; callers must not run the state again while using it.
func (st *solveState) field() *Field {
	return &Field{
		Nx: st.s.Nx, Ny: st.s.Ny,
		W: st.d.W, H: st.d.H,
		Temps:      st.temps,
		Iterations: st.iterations,
	}
}

// runSOR is the legacy successive over-relaxation solve.
func (st *solveState) runSOR(ctx context.Context) error {
	s := st.s
	gv := s.GVertical / float64(st.nc)
	gl := s.GLateral
	temps := st.temps
	cellPower := st.cellPower
	omega, tol, maxIter, workers := st.omega, st.tol, st.maxIter, st.workers
	// Solver telemetry: one span per SOR solve reporting convergence
	// (sweep count + final residual). Untraced contexts get a nil span
	// and every instrumentation line below is a pointer check.
	_, sp := obs.StartSpan(ctx, "thermal.sor")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("grid", s.Nx*s.Ny)
		sp.SetAttr("workers", workers)
	}
	lastDelta := math.Inf(1)
	update := func(ix, iy int) float64 {
		i := iy*s.Nx + ix
		num := cellPower[i] + gv*s.TAmbient
		den := gv
		if ix > 0 {
			num += gl * temps[i-1]
			den += gl
		}
		if ix < s.Nx-1 {
			num += gl * temps[i+1]
			den += gl
		}
		if iy > 0 {
			num += gl * temps[i-s.Nx]
			den += gl
		}
		if iy < s.Ny-1 {
			num += gl * temps[i+s.Nx]
			den += gl
		}
		delta := num/den - temps[i]
		temps[i] += omega * delta
		return math.Abs(delta)
	}
	iter := 0
	if workers == 1 {
		// Legacy lexicographic Gauss–Seidel-ordered SOR.
		for ; iter < maxIter; iter++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			maxDelta := 0.0
			for iy := 0; iy < s.Ny; iy++ {
				for ix := 0; ix < s.Nx; ix++ {
					if ad := update(ix, iy); ad > maxDelta {
						maxDelta = ad
					}
				}
			}
			lastDelta = maxDelta
			if maxDelta < tol {
				iter++
				break
			}
		}
	} else {
		// Red-black SOR: phase 0 updates cells with (ix+iy) even,
		// phase 1 the odd ones. All cells of one color depend only on
		// the other color, so rows fan out over the workers without
		// changing the result.
		if st.rowMax == nil {
			st.rowMax = make([]float64, s.Ny)
		}
		rowMax := st.rowMax
		for ; iter < maxIter; iter++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := range rowMax {
				rowMax[i] = 0
			}
			for phase := 0; phase < 2; phase++ {
				par.ForChunks(workers, s.Ny, 4, func(yLo, yHi int) {
					for iy := yLo; iy < yHi; iy++ {
						m := rowMax[iy]
						for ix := (phase + iy) % 2; ix < s.Nx; ix += 2 {
							if ad := update(ix, iy); ad > m {
								m = ad
							}
						}
						rowMax[iy] = m
					}
				})
			}
			maxDelta := 0.0
			for _, m := range rowMax {
				if m > maxDelta {
					maxDelta = m
				}
			}
			lastDelta = maxDelta
			if maxDelta < tol {
				iter++
				break
			}
		}
	}
	if sp != nil {
		sp.SetAttr("iterations", iter)
		sp.SetAttr("residual", lastDelta)
	}
	st.iterations = iter
	st.lastDelta = lastDelta
	if iter >= maxIter {
		return errors.New("thermal: SOR did not converge")
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// BlockTemps returns the area-weighted mean and maximum temperature of
// every design block under the field. The reliability analysis uses
// the per-block maximum — the paper's "block-level worst-case
// operating temperature" (Section IV-A).
func (f *Field) BlockTemps(d *floorplan.Design) (mean, max []float64, err error) {
	mean = make([]float64, len(d.Blocks))
	max = make([]float64, len(d.Blocks))
	if err := f.BlockTempsInto(d, mean, max); err != nil {
		return nil, nil, err
	}
	return mean, max, nil
}

// BlockTempsInto is BlockTemps writing into caller-provided slices
// (each len(d.Blocks)), so a fixed-point loop can reuse its scratch
// across rounds.
func (f *Field) BlockTempsInto(d *floorplan.Design, mean, max []float64) error {
	if len(mean) != len(d.Blocks) || len(max) != len(d.Blocks) {
		return fmt.Errorf("thermal: scratch length %d/%d for %d blocks", len(mean), len(max), len(d.Blocks))
	}
	cw := f.W / float64(f.Nx)
	ch := f.H / float64(f.Ny)
	for bi := range d.Blocks {
		b := &d.Blocks[bi]
		var wsum, tsum float64
		tmax := math.Inf(-1)
		for iy := 0; iy < f.Ny; iy++ {
			oy := overlap1D(b.Y, b.Y+b.H, float64(iy)*ch, float64(iy+1)*ch)
			if oy <= 0 {
				continue
			}
			for ix := 0; ix < f.Nx; ix++ {
				ox := overlap1D(b.X, b.X+b.W, float64(ix)*cw, float64(ix+1)*cw)
				if ox <= 0 {
					continue
				}
				w := ox * oy
				t := f.Temps[iy*f.Nx+ix]
				wsum += w
				tsum += w * t
				if t > tmax {
					tmax = t
				}
			}
		}
		if wsum == 0 {
			return fmt.Errorf("thermal: block %q overlaps no thermal cells", b.Name)
		}
		mean[bi] = tsum / wsum
		max[bi] = tmax
	}
	return nil
}

// EnergyBalance returns the relative imbalance between the heat
// extracted vertically, Σ gv·(T_c - T_amb), and the total injected
// power. A correct steady-state solution makes this ~0; tests use it
// as the conservation check.
func (f *Field) EnergyBalance(s *Solver, totalPower float64) float64 {
	gv := s.GVertical / float64(f.Nx*f.Ny)
	out := 0.0
	for _, t := range f.Temps {
		out += gv * (t - s.TAmbient)
	}
	if totalPower == 0 {
		return math.Abs(out)
	}
	return math.Abs(out-totalPower) / totalPower
}
