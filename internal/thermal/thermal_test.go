package thermal

import (
	"math"
	"testing"

	"obdrel/internal/floorplan"
	"obdrel/internal/power"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// uniformDesign is a single block covering the whole die.
func uniformDesign() *floorplan.Design {
	return &floorplan.Design{
		Name: "uniform", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "all", X: 0, Y: 0, W: 1, H: 1, Devices: 1000, Activity: 0.5},
		},
	}
}

func TestUniformPowerGivesUniformRise(t *testing.T) {
	s := DefaultSolver()
	d := uniformDesign()
	p := 10.0
	f, err := s.Solve(d, []float64{p})
	if err != nil {
		t.Fatal(err)
	}
	// With uniform power there is no lateral flow; every cell sits at
	// T_amb + P_total/G_vertical.
	want := s.TAmbient + p/s.GVertical
	min, max := f.MinMax()
	if !approx(min, want, 1e-4) || !approx(max, want, 1e-4) {
		t.Errorf("uniform field [%v, %v], want %v", min, max, want)
	}
}

func TestZeroPowerStaysAmbient(t *testing.T) {
	s := DefaultSolver()
	d := uniformDesign()
	f, err := s.Solve(d, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	min, max := f.MinMax()
	if !approx(min, s.TAmbient, 1e-9) || !approx(max, s.TAmbient, 1e-9) {
		t.Errorf("zero-power field [%v, %v]", min, max)
	}
}

func TestEnergyBalance(t *testing.T) {
	s := DefaultSolver()
	s.Tol = 1e-9
	d := floorplan.C6()
	powers := make([]float64, len(d.Blocks))
	total := 0.0
	for i := range powers {
		powers[i] = 1 + float64(i)*0.5
		total += powers[i]
	}
	f, err := s.Solve(d, powers)
	if err != nil {
		t.Fatal(err)
	}
	if imb := f.EnergyBalance(s, total); imb > 1e-5 {
		t.Errorf("energy imbalance %v", imb)
	}
}

func TestHotspotWhereThePowerIs(t *testing.T) {
	s := DefaultSolver()
	d := &floorplan.Design{
		Name: "two", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "hot", X: 0, Y: 0, W: 0.5, H: 1, Devices: 10, Activity: 1},
			{Name: "cold", X: 0.5, Y: 0, W: 0.5, H: 1, Devices: 10, Activity: 0},
		},
	}
	f, err := s.Solve(d, []float64{20, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(f.At(0.25, 0.5) > f.At(0.75, 0.5)+5) {
		t.Errorf("hot side %v not hotter than cold side %v", f.At(0.25, 0.5), f.At(0.75, 0.5))
	}
	mean, max, err := f.BlockTemps(d)
	if err != nil {
		t.Fatal(err)
	}
	if !(mean[0] > mean[1]) {
		t.Errorf("block means %v not ordered", mean)
	}
	if max[0] < mean[0] || max[1] < mean[1] {
		t.Error("block max below block mean")
	}
}

func TestMonotoneInPower(t *testing.T) {
	s := DefaultSolver()
	d := uniformDesign()
	f1, err := s.Solve(d, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Solve(d, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Temps {
		if f2.Temps[i] < f1.Temps[i]-1e-9 {
			t.Fatal("doubling power lowered a cell temperature")
		}
	}
}

func TestSolveValidatesInputs(t *testing.T) {
	s := DefaultSolver()
	d := uniformDesign()
	if _, err := s.Solve(d, []float64{1, 2}); err == nil {
		t.Error("wrong power count should error")
	}
	if _, err := s.Solve(d, []float64{-1}); err == nil {
		t.Error("negative power should error")
	}
	bad := *DefaultSolver()
	bad.Nx = 0
	if _, err := bad.Solve(d, []float64{1}); err == nil {
		t.Error("invalid resolution should error")
	}
	bad = *DefaultSolver()
	bad.Omega = 2.5
	if _, err := bad.Solve(d, []float64{1}); err == nil {
		t.Error("invalid omega should error")
	}
}

func TestC6ProfileShape(t *testing.T) {
	// Full pipeline sanity: the EV6-like design develops a
	// block-structured profile with tens of kelvin of spread and the
	// hotspot on the integer execution unit — the Fig. 1(a) shape.
	s := DefaultSolver()
	d := floorplan.C6()
	pm := power.Default()
	res, err := s.SolveCoupled(d, func(temps []float64) ([]float64, error) {
		return pm.DesignPowers(d, 1.2, temps)
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Field.MinMax()
	spread := max - min
	if spread < 10 || spread > 60 {
		t.Errorf("across-die spread = %v K, outside [10, 60]", spread)
	}
	if max < 60 || max > 130 {
		t.Errorf("peak temperature = %v °C, outside the plausible envelope", max)
	}
	// Hottest block must be intexec.
	hot := 0
	for i := range res.BlockMean {
		if res.BlockMean[i] > res.BlockMean[hot] {
			hot = i
		}
	}
	if d.Blocks[hot].Name != "intexec" {
		t.Errorf("hottest block is %q, want intexec (temps %v)", d.Blocks[hot].Name, res.BlockMean)
	}
	// Caches must be cooler than the hotspot by a wide margin.
	for i := range d.Blocks {
		if d.Blocks[i].Class == floorplan.ClassCache {
			if res.BlockMean[hot]-res.BlockMean[i] < 5 {
				t.Errorf("cache %q within 5K of the hotspot", d.Blocks[i].Name)
			}
		}
	}
}

func TestSolveCoupledConverges(t *testing.T) {
	s := DefaultSolver()
	d := floorplan.C6()
	pm := power.Default()
	res, err := s.SolveCoupled(d, func(temps []float64) ([]float64, error) {
		return pm.DesignPowers(d, 1.2, temps)
	}, 0.01, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Errorf("fixed point converged suspiciously fast (%d rounds)", res.Rounds)
	}
	// Re-evaluating power at the converged temps must reproduce the
	// converged powers (fixed-point property).
	p2, err := pm.DesignPowers(d, 1.2, res.BlockMean)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p2 {
		if !approx(p2[i], res.Powers[i], 1e-3) {
			t.Errorf("block %d power not at fixed point: %v vs %v", i, p2[i], res.Powers[i])
		}
	}
}

func TestSolveCoupledRequiresCallback(t *testing.T) {
	s := DefaultSolver()
	if _, err := s.SolveCoupled(uniformDesign(), nil, 0, 0); err == nil {
		t.Error("nil callback should error")
	}
}

func TestFieldAtClamps(t *testing.T) {
	s := DefaultSolver()
	f, err := s.Solve(uniformDesign(), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if f.At(-1, -1) != f.At(0, 0) {
		t.Error("negative coordinates should clamp to the first cell")
	}
	if f.At(99, 99) != f.At(0.999, 0.999) {
		t.Error("large coordinates should clamp to the last cell")
	}
}

func TestFieldMean(t *testing.T) {
	f := &Field{Nx: 2, Ny: 1, W: 1, H: 1, Temps: []float64{40, 60}}
	if f.Mean() != 50 {
		t.Errorf("Mean = %v", f.Mean())
	}
}

func BenchmarkSolveC6(b *testing.B) {
	s := DefaultSolver()
	d := floorplan.C6()
	powers := make([]float64, len(d.Blocks))
	for i := range powers {
		powers[i] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(d, powers); err != nil {
			b.Fatal(err)
		}
	}
}
