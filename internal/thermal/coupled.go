package thermal

import (
	"context"
	"errors"
	"fmt"
	"math"

	"obdrel/internal/fault"
	"obdrel/internal/floorplan"
	"obdrel/internal/obs"
)

// CoupledResult is the converged output of SolveCoupled.
type CoupledResult struct {
	Field *Field
	// BlockMean and BlockMax are the per-block mean and worst-case
	// temperatures (°C).
	BlockMean, BlockMax []float64
	// Powers is the converged per-block power (W).
	Powers []float64
	// Rounds is the number of power/thermal fixed-point rounds used.
	Rounds int
}

// SolveCoupled runs the power/thermal fixed point: leakage power
// depends on temperature, which depends on power. powerAt receives the
// current per-block mean temperatures and returns per-block powers;
// the loop repeats until the largest block-temperature change falls
// below tolK (default 0.05 K) or maxRounds (default 25) is hit.
func (s *Solver) SolveCoupled(d *floorplan.Design, powerAt func(temps []float64) ([]float64, error), tolK float64, maxRounds int) (*CoupledResult, error) {
	return s.SolveCoupledCtx(context.Background(), d, powerAt, tolK, maxRounds)
}

// SolveCoupledCtx is SolveCoupled with cancellation checkpoints: one
// before each fixed-point round, plus the inner solver's per-sweep
// checks via the solve state.
//
// The temperature-field, cell-power, and block-temperature scratch
// slices are allocated once and reused across rounds (each round still
// restarts the inner solve from ambient, so the per-round iterations
// are identical to a fresh SolveCtx call).
func (s *Solver) SolveCoupledCtx(ctx context.Context, d *floorplan.Design, powerAt func(temps []float64) ([]float64, error), tolK float64, maxRounds int) (*CoupledResult, error) {
	if powerAt == nil {
		return nil, errors.New("thermal: SolveCoupled requires a power callback")
	}
	if tolK <= 0 {
		tolK = 0.05
	}
	if maxRounds <= 0 {
		maxRounds = 25
	}
	// The coupled span parents the inner per-round solver spans, so a
	// trace shows how many fixed-point rounds (Eq. 12–14 loop) the
	// solve took and how each round's inner solve converged.
	ctx, sp := obs.StartSpan(ctx, "thermal.coupled")
	defer sp.End()
	st, err := s.newSolveState(d)
	if err != nil {
		return nil, err
	}
	temps := make([]float64, len(d.Blocks))
	for i := range temps {
		temps[i] = s.TAmbient
	}
	var (
		field      = st.field() // aliases the state's scratch; valid after the last run
		mean       = make([]float64, len(d.Blocks))
		max        = make([]float64, len(d.Blocks))
		powers     []float64
		lastChange = math.Inf(1)
	)
	round := 0
	for ; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// thermal.solve: one fault evaluation per fixed-point round, so
		// an armed latency or error rule perturbs the solver loop exactly
		// where a slow or failing solver backend would.
		if err := fault.Inject(ctx, "thermal.solve"); err != nil {
			return nil, err
		}
		powers, err = powerAt(temps)
		if err != nil {
			return nil, fmt.Errorf("thermal: power callback: %w", err)
		}
		if err := st.run(ctx, powers); err != nil {
			return nil, err
		}
		field.Iterations = st.iterations
		if err := field.BlockTempsInto(d, mean, max); err != nil {
			return nil, err
		}
		lastChange = 0
		for i := range mean {
			if c := math.Abs(mean[i] - temps[i]); c > lastChange {
				lastChange = c
			}
		}
		copy(temps, mean)
		if lastChange < tolK {
			round++
			break
		}
	}
	if sp != nil {
		sp.SetAttr("rounds", round)
		sp.SetAttr("last_change_k", lastChange)
	}
	if lastChange >= tolK {
		return nil, errors.New("thermal: power/thermal fixed point did not converge")
	}
	return &CoupledResult{
		Field:     field,
		BlockMean: mean,
		BlockMax:  max,
		Powers:    powers,
		Rounds:    round,
	}, nil
}
