package thermal

import (
	"context"
	"errors"
	"math"
	"strconv"
	"strings"

	"obdrel/internal/obs"
	"obdrel/internal/par"
)

// Geometric multigrid for the HotSpot-style 5-point system
//
//	(gv_i + gl·deg_i)·T_i − gl·Σ_n T_n = P_i + gv_i·T_amb
//
// A V-cycle smooths the high-frequency error with red-black
// Gauss–Seidel sweeps, restricts the residual onto a cell-centered
// grid of half the resolution (full weighting: each coarse cell sums
// the residual power of the fine cells it covers, which conserves
// energy exactly), recurses, and prolongs the coarse correction back
// with bilinear interpolation. The coarse operator is the
// rediscretization of the same physics: a coarse cell's vertical
// conductance is the sum of its children's (Σ gv is GVertical at
// every level) and the lateral conductance is unchanged (in 2-D, two
// parallel paths of two series gl links have conductance gl again).
// The coarsest level — at most coarseCells cells — is solved directly
// through a dense LU factorization computed once per state.
//
// Determinism: the smoother updates one checkerboard color at a time,
// reading only the other color, and restriction/prolongation write
// disjoint cells with a fixed inner summation order, so the solution
// is bit-identical for every worker count, including 1.

// Multigrid tuning constants: pre-/post-smoothing sweeps per level and
// the cell count below which a level is solved directly.
const (
	mgPreSmooth  = 2
	mgPostSmooth = 2
	coarseCells  = 64
)

// mgLevel is one grid of the multigrid hierarchy with its per-cell
// state and, on coarse levels, the geometry linking it to its finer
// parent.
type mgLevel struct {
	nx, ny int
	gv     []float64 // per-cell vertical conductance (W/K)
	u      []float64 // iterate: temperatures on the finest level, error corrections below
	f      []float64 // right-hand side: power+ambient on the finest level, restricted residual below
	r      []float64 // residual scratch

	// Fine→coarse geometry (set on every level below the finest):
	// fine columns [colStart[I], colStart[I+1]) restrict into coarse
	// column I, and likewise rows; xi0/xi1/xw (per fine column) and
	// yi0/yi1/yw (per fine row) are the clamped bilinear interpolation
	// stencils used to prolong this level's correction onto the parent.
	colStart, rowStart []int
	xi0, xi1           []int
	xw                 []float64
	yi0, yi1           []int
	yw                 []float64
}

// mgState is the reusable multigrid hierarchy for one solver
// configuration: the level grids plus the dense factorization of the
// coarsest operator.
type mgState struct {
	levels []*mgLevel
	lu     *denseLU
	prev   []float64 // previous fine iterate, for the per-cycle delta
	dims   string    // "32x32>16x16>8x8" for the span attrs
}

func (l *mgLevel) idx(ix, iy int) int { return iy*l.nx + ix }

// newMGState builds the level hierarchy for the solver's grid. Each
// coarsening halves both dimensions (rounding up), aggregating the
// vertical conductances, until the grid fits the direct solver.
func newMGState(s *Solver) (*mgState, error) {
	fine := &mgLevel{nx: s.Nx, ny: s.Ny}
	nc := s.Nx * s.Ny
	fine.gv = make([]float64, nc)
	gvCell := s.GVertical / float64(nc)
	for i := range fine.gv {
		fine.gv[i] = gvCell
	}
	fine.u = make([]float64, nc)
	fine.f = make([]float64, nc)
	fine.r = make([]float64, nc)

	m := &mgState{levels: []*mgLevel{fine}}
	for last := fine; last.nx*last.ny > coarseCells; {
		nxc, nyc := (last.nx+1)/2, (last.ny+1)/2
		if nxc == last.nx && nyc == last.ny {
			break
		}
		c := coarsen(last, nxc, nyc)
		m.levels = append(m.levels, c)
		last = c
	}
	var dims strings.Builder
	for i, l := range m.levels {
		if i > 0 {
			dims.WriteByte('>')
		}
		dims.WriteString(strconv.Itoa(l.nx))
		dims.WriteByte('x')
		dims.WriteString(strconv.Itoa(l.ny))
	}
	m.dims = dims.String()
	m.prev = make([]float64, nc)

	lu, err := newDenseLU(m.levels[len(m.levels)-1], s.GLateral)
	if err != nil {
		return nil, err
	}
	m.lu = lu
	return m, nil
}

// coarsen builds the next-coarser level under fine, with the
// restriction ranges, aggregated conductances, and prolongation
// stencils that tie the pair together.
func coarsen(fine *mgLevel, nxc, nyc int) *mgLevel {
	c := &mgLevel{nx: nxc, ny: nyc}
	ncc := nxc * nyc
	c.gv = make([]float64, ncc)
	c.u = make([]float64, ncc)
	c.f = make([]float64, ncc)
	c.r = make([]float64, ncc)

	// Fine index ix maps to coarse column ix·nxc/nx (floor), so coarse
	// column I covers fine columns [⌈I·nx/nxc⌉, ⌈(I+1)·nx/nxc⌉).
	c.colStart = make([]int, nxc+1)
	for i := 0; i <= nxc; i++ {
		c.colStart[i] = (i*fine.nx + nxc - 1) / nxc
	}
	c.rowStart = make([]int, nyc+1)
	for j := 0; j <= nyc; j++ {
		c.rowStart[j] = (j*fine.ny + nyc - 1) / nyc
	}
	for iy := 0; iy < fine.ny; iy++ {
		cy := iy * nyc / fine.ny
		for ix := 0; ix < fine.nx; ix++ {
			cx := ix * nxc / fine.nx
			c.gv[cy*nxc+cx] += fine.gv[iy*fine.nx+ix]
		}
	}

	// Bilinear prolongation stencil per fine coordinate: position the
	// fine cell center in coarse index space and interpolate between
	// the two surrounding coarse centers, clamping at the boundary
	// (constant extrapolation — consistent with the insulated edges).
	c.xi0, c.xi1, c.xw = interpStencil(fine.nx, nxc)
	c.yi0, c.yi1, c.yw = interpStencil(fine.ny, nyc)
	return c
}

func interpStencil(nFine, nCoarse int) (i0s, i1s []int, ws []float64) {
	i0s = make([]int, nFine)
	i1s = make([]int, nFine)
	ws = make([]float64, nFine)
	for i := 0; i < nFine; i++ {
		p := (float64(i)+0.5)*float64(nCoarse)/float64(nFine) - 0.5
		i0 := int(math.Floor(p))
		w := p - float64(i0)
		if i0 < 0 {
			i0, w = 0, 0
		}
		i1 := i0 + 1
		if i1 > nCoarse-1 {
			i1 = nCoarse - 1
		}
		if i0 > nCoarse-1 {
			i0 = nCoarse - 1
		}
		i0s[i], i1s[i], ws[i] = i0, i1, w
	}
	return i0s, i1s, ws
}

// smooth runs red-black Gauss–Seidel sweeps on A·u = f. Within a
// phase every update reads only opposite-color cells, so the row fan-out
// over workers cannot change the result.
func (l *mgLevel) smooth(workers, sweeps int, gl float64) {
	for s := 0; s < sweeps; s++ {
		for phase := 0; phase < 2; phase++ {
			par.ForChunks(workers, l.ny, 4, func(yLo, yHi int) {
				for iy := yLo; iy < yHi; iy++ {
					for ix := (phase + iy) % 2; ix < l.nx; ix += 2 {
						i := iy*l.nx + ix
						num := l.f[i]
						den := l.gv[i]
						if ix > 0 {
							num += gl * l.u[i-1]
							den += gl
						}
						if ix < l.nx-1 {
							num += gl * l.u[i+1]
							den += gl
						}
						if iy > 0 {
							num += gl * l.u[i-l.nx]
							den += gl
						}
						if iy < l.ny-1 {
							num += gl * l.u[i+l.nx]
							den += gl
						}
						l.u[i] = num / den
					}
				}
			})
		}
	}
}

// residual computes r = f − A·u.
func (l *mgLevel) residual(workers int, gl float64) {
	par.ForChunks(workers, l.ny, 4, func(yLo, yHi int) {
		for iy := yLo; iy < yHi; iy++ {
			for ix := 0; ix < l.nx; ix++ {
				i := iy*l.nx + ix
				au := l.gv[i] * l.u[i]
				if ix > 0 {
					au += gl * (l.u[i] - l.u[i-1])
				}
				if ix < l.nx-1 {
					au += gl * (l.u[i] - l.u[i+1])
				}
				if iy > 0 {
					au += gl * (l.u[i] - l.u[i-l.nx])
				}
				if iy < l.ny-1 {
					au += gl * (l.u[i] - l.u[i+l.nx])
				}
				l.r[i] = l.f[i] - au
			}
		}
	})
}

// restrict sums the fine residual into the coarse right-hand side
// (full weighting over each coarse cell's children — residual power is
// conserved) and zeroes the coarse iterate for the error equation.
func restrict(fine, coarse *mgLevel, workers int) {
	par.ForChunks(workers, coarse.ny, 4, func(yLo, yHi int) {
		for cy := yLo; cy < yHi; cy++ {
			for cx := 0; cx < coarse.nx; cx++ {
				sum := 0.0
				for iy := coarse.rowStart[cy]; iy < coarse.rowStart[cy+1]; iy++ {
					row := iy * fine.nx
					for ix := coarse.colStart[cx]; ix < coarse.colStart[cx+1]; ix++ {
						sum += fine.r[row+ix]
					}
				}
				ci := cy*coarse.nx + cx
				coarse.f[ci] = sum
				coarse.u[ci] = 0
			}
		}
	})
}

// prolong adds the bilinear interpolation of the coarse correction to
// the fine iterate.
func prolong(fine, coarse *mgLevel, workers int) {
	par.ForChunks(workers, fine.ny, 4, func(yLo, yHi int) {
		for iy := yLo; iy < yHi; iy++ {
			j0 := coarse.yi0[iy] * coarse.nx
			j1 := coarse.yi1[iy] * coarse.nx
			wy := coarse.yw[iy]
			row := iy * fine.nx
			for ix := 0; ix < fine.nx; ix++ {
				i0, i1, wx := coarse.xi0[ix], coarse.xi1[ix], coarse.xw[ix]
				top := (1-wx)*coarse.u[j0+i0] + wx*coarse.u[j0+i1]
				bot := (1-wx)*coarse.u[j1+i0] + wx*coarse.u[j1+i1]
				fine.u[row+ix] += (1-wy)*top + wy*bot
			}
		}
	})
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// vcycle runs one V-cycle over the hierarchy. When csp is non-nil
// (traced request), the per-level residual maxima measured after
// pre-smoothing are recorded on the cycle span.
func (m *mgState) vcycle(workers int, gl float64, csp *obs.Span) {
	n := len(m.levels)
	for k := 0; k < n-1; k++ {
		l := m.levels[k]
		l.smooth(workers, mgPreSmooth, gl)
		l.residual(workers, gl)
		if csp != nil {
			csp.SetAttr("residual_l"+strconv.Itoa(k), maxAbs(l.r))
		}
		restrict(l, m.levels[k+1], workers)
	}
	coarse := m.levels[n-1]
	m.lu.solve(coarse.f, coarse.u)
	if csp != nil {
		csp.SetAttr("coarse_cells", coarse.nx*coarse.ny)
	}
	for k := n - 2; k >= 0; k-- {
		prolong(m.levels[k], m.levels[k+1], workers)
		m.levels[k].smooth(workers, mgPostSmooth, gl)
	}
}

// runMultigrid drives V-cycles on the finest level until the largest
// per-cycle temperature update falls below the tolerance — the same
// convergence semantics as the SOR sweep.
func (st *solveState) runMultigrid(ctx context.Context) error {
	s := st.s
	if st.mg == nil {
		mg, err := newMGState(s)
		if err != nil {
			return err
		}
		st.mg = mg
	}
	m := st.mg
	fine := m.levels[0]
	gl := s.GLateral
	copy(fine.u, st.temps)
	for i := range fine.f {
		fine.f[i] = st.cellPower[i] + fine.gv[i]*s.TAmbient
	}

	// Per-solve telemetry mirroring the SOR span: the cycle count plays
	// the role of "iterations" and the final per-cycle update the
	// "residual". Traced requests additionally get one child span per
	// V-cycle carrying the per-level smoothing residuals.
	sctx, sp := obs.StartSpan(ctx, "thermal.multigrid")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("grid", s.Nx*s.Ny)
		sp.SetAttr("workers", st.workers)
		sp.SetAttr("levels", len(m.levels))
		sp.SetAttr("level_dims", m.dims)
	}

	maxCycles := st.maxIter
	if maxCycles > 500 {
		maxCycles = 500
	}
	lastDelta := math.Inf(1)
	cycle := 0
	if len(m.levels) == 1 {
		// The whole grid fits the direct solver: one exact solve.
		m.lu.solve(fine.f, fine.u)
		lastDelta = 0
		cycle = 1
	} else {
		for ; cycle < maxCycles; cycle++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			copy(m.prev, fine.u)
			var csp *obs.Span
			if sp != nil {
				_, csp = obs.StartSpan(sctx, "thermal.mg.cycle")
			}
			m.vcycle(st.workers, gl, csp)
			maxDelta := 0.0
			for i, u := range fine.u {
				if d := math.Abs(u - m.prev[i]); d > maxDelta {
					maxDelta = d
				}
			}
			lastDelta = maxDelta
			if csp != nil {
				csp.SetAttr("cycle", cycle)
				csp.SetAttr("delta_k", maxDelta)
				csp.End()
			}
			if maxDelta < st.tol {
				cycle++
				break
			}
		}
	}
	copy(st.temps, fine.u)
	if sp != nil {
		sp.SetAttr("cycles", cycle)
		sp.SetAttr("iterations", cycle)
		sp.SetAttr("residual", lastDelta)
	}
	st.iterations = cycle
	st.lastDelta = lastDelta
	if cycle >= maxCycles && lastDelta >= st.tol {
		return errors.New("thermal: multigrid did not converge")
	}
	return nil
}

// denseLU is the pivoted LU factorization of the coarsest level's
// operator, computed once and back-substituted every cycle.
type denseLU struct {
	n   int
	a   []float64 // packed L\U, row-major
	piv []int
}

func newDenseLU(l *mgLevel, gl float64) (*denseLU, error) {
	n := l.nx * l.ny
	a := make([]float64, n*n)
	for iy := 0; iy < l.ny; iy++ {
		for ix := 0; ix < l.nx; ix++ {
			i := iy*l.nx + ix
			diag := l.gv[i]
			set := func(j int) {
				a[i*n+j] = -gl
				diag += gl
			}
			if ix > 0 {
				set(i - 1)
			}
			if ix < l.nx-1 {
				set(i + 1)
			}
			if iy > 0 {
				set(i - l.nx)
			}
			if iy < l.ny-1 {
				set(i + l.nx)
			}
			a[i*n+i] = diag
		}
	}
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// Partial pivoting; the operator is strictly diagonally
		// dominant (gv > 0), so a zero pivot means a programming error.
		p, best := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return nil, errors.New("thermal: singular coarse operator")
		}
		piv[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
		}
		inv := 1 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] * inv
			a[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= m * a[k*n+j]
			}
		}
	}
	return &denseLU{n: n, a: a, piv: piv}, nil
}

// solve computes x = A⁻¹·b. b is left unchanged (unless x aliases it).
func (lu *denseLU) solve(b, x []float64) {
	n := lu.n
	if &b[0] != &x[0] {
		copy(x, b)
	}
	for k := 0; k < n; k++ {
		if p := lu.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.a[i*n : i*n+i]
		for j, m := range row {
			s -= m * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.a[i*n+i+1 : i*n+n]
		for j, m := range row {
			s -= m * x[i+1+j]
		}
		x[i] = s / lu.a[i*n+i]
	}
}
