package par

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(1, 100); got != 1 {
		t.Fatalf("Resolve(1, 100) = %d", got)
	}
	if got := Resolve(8, 3); got != 3 {
		t.Fatalf("Resolve(8, 3) = %d, want clamp to n", got)
	}
	if got := Resolve(0, 100); got < 1 {
		t.Fatalf("Resolve(0, 100) = %d", got)
	}
	if got := Resolve(-5, 100); got < 1 {
		t.Fatalf("Resolve(-5, 100) = %d", got)
	}
	if got := Resolve(4, 0); got != 1 {
		t.Fatalf("Resolve(4, 0) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const n = 1000
		var hits [n]atomic.Int32
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, c)
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 1000} {
		var covered [1001]atomic.Int32
		ForChunks(4, n, 256, func(lo, hi int) {
			if lo%256 != 0 || hi <= lo || hi > n {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := 0; i < n; i++ {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

// TestSumOrderedDeterministic checks the documented contract: every
// worker count ≥ 2 produces bit-identical sums, and the serial path
// agrees to within reassociation error.
func TestSumOrderedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 255, 256, 257, 5000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Exp(10*rng.Float64())
		}
		term := func(i int) float64 { return xs[i] }
		serial := SumOrdered(1, n, term)
		ref := SumOrdered(2, n, term)
		for _, w := range []int{3, 4, 7, 32} {
			if got := SumOrdered(w, n, term); got != ref {
				t.Fatalf("n=%d workers=%d: %v != workers=2 result %v", n, w, got, ref)
			}
		}
		if d := math.Abs(serial - ref); d > 1e-12*math.Abs(serial)+1e-300 {
			t.Fatalf("n=%d: serial %v vs parallel %v differ beyond reassociation error", n, serial, ref)
		}
	}
}

func TestPairwiseSumMatchesExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	if got := PairwiseSum(xs); got != 28 {
		t.Fatalf("PairwiseSum = %v", got)
	}
	if got := PairwiseSum(nil); got != 0 {
		t.Fatalf("PairwiseSum(nil) = %v", got)
	}
}

func TestMaxOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	term := func(i int) float64 { return xs[i] }
	want := SumOrderedRefMax(xs)
	for _, w := range []int{1, 2, 5, 16} {
		if got := MaxOrdered(w, n, term); got != want {
			t.Fatalf("workers=%d: MaxOrdered = %v, want %v", w, got, want)
		}
	}
}

// SumOrderedRefMax is the obvious serial max, kept out-of-line so the
// test reads as a cross-check.
func SumOrderedRefMax(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
