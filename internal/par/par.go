// Package par is the repo-wide worker-pool substrate. Every
// parallelized hot path — Monte-Carlo sampling and queries, the
// red-black thermal SOR, covariance assembly, hybrid-table fills, the
// cmd/ sweep fan-outs — goes through these helpers so the concurrency
// policy lives in one place:
//
//   - A requested worker count of 0 means "use GOMAXPROCS"; 1 selects
//     the exact serial legacy path (no goroutines, no reduction-order
//     change), which keeps serial/parallel equivalence testable.
//   - Work distribution uses an atomic counter, not a channel, so the
//     producer never serializes on an unbuffered handoff.
//   - Floating-point reductions use a fixed chunk plan that depends
//     only on the problem size, never on the worker count, so parallel
//     results are bit-identical no matter how many workers run.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"obdrel/internal/obs"
)

// Resolve maps a requested worker count onto [1, n]: 0 (or negative)
// selects GOMAXPROCS, and the result never exceeds the number of work
// items n.
func Resolve(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n), fanning out over Resolve
// (workers, n) goroutines. Items are claimed with an atomic counter.
// With workers == 1 (after resolution) fn runs inline in index order —
// the exact serial path.
func For(workers, n int, fn func(i int)) {
	w := Resolve(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForCtx is For with a cancellation checkpoint before every item:
// once ctx expires, unclaimed items are skipped and ctx.Err() is
// returned. Items already executing run to completion (fn is never
// interrupted mid-item), so callers keep their no-torn-writes
// invariants. With workers == 1 the loop stays inline and serial.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	w := Resolve(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				annotateSkipped(ctx, n-i)
				return err
			}
			fn(i)
		}
		return nil
	}
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		claimed := int(next.Load())
		if claimed > n {
			claimed = n
		}
		annotateSkipped(ctx, n-claimed)
		return err
	}
	return nil
}

// annotateSkipped records how many work items a cancelled ForCtx left
// unclaimed on the active span, making cancellation latency visible in
// traces. The FromContext nil check keeps the untraced path free of
// interface boxing.
func annotateSkipped(ctx context.Context, skipped int) {
	if sp := obs.FromContext(ctx); sp != nil {
		sp.SetAttr("par_skipped", skipped)
	}
}

// ForChunksCtx is ForChunks with ForCtx's cancellation checkpoints
// (one per chunk).
func ForChunksCtx(ctx context.Context, workers, n, chunk int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if chunk < 1 {
		chunk = 1
	}
	numChunks := (n + chunk - 1) / chunk
	return ForCtx(ctx, workers, numChunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ForChunks splits [0, n) into ceil(n/chunk) fixed-size chunks and
// runs fn(lo, hi) for each. The chunk boundaries depend only on n and
// chunk — not on the worker count — so any per-chunk results a caller
// collects are deterministic. With workers == 1 chunks run inline in
// order.
func ForChunks(workers, n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	numChunks := (n + chunk - 1) / chunk
	For(workers, numChunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// sumChunk is the fixed reduction granularity of SumOrdered. It is a
// compile-time constant precisely so the summation tree never depends
// on the runtime worker count.
const sumChunk = 256

// SumOrdered computes Σ term(i) for i in [0, n).
//
// With workers == 1 it is the plain left-to-right loop — bit-identical
// to the pre-parallel serial code. With workers > 1 each fixed
// 256-item chunk is summed left-to-right into a partial, and the
// partials are combined by ordered pairwise summation; the result is
// bit-identical for every worker count ≥ 2 (the tree shape depends
// only on n). The two paths differ only by floating-point reassociation,
// i.e. within a few ULPs; pairwise summation is in fact the more
// accurate of the two.
func SumOrdered(workers, n int, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := Resolve(workers, n)
	if w == 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += term(i)
		}
		return s
	}
	numChunks := (n + sumChunk - 1) / sumChunk
	partials := make([]float64, numChunks)
	ForChunks(w, n, sumChunk, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += term(i)
		}
		partials[lo/sumChunk] = s
	})
	return PairwiseSum(partials)
}

// PairwiseSum adds xs by recursive halving in index order. The result
// depends only on the values and their order, and the error grows as
// O(log n) rather than the linear loop's O(n).
func PairwiseSum(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	case 2:
		return xs[0] + xs[1]
	}
	half := len(xs) / 2
	return PairwiseSum(xs[:half]) + PairwiseSum(xs[half:])
}

// MaxOrdered computes max over per-chunk maxima with the same fixed
// chunk plan as SumOrdered. max is associative and commutative, so the
// result is identical to the serial loop for every worker count; the
// helper exists so convergence checks inside parallel sweeps stay
// deterministic and allocation-free at the call site.
func MaxOrdered(workers, n int, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := Resolve(workers, n)
	if w == 1 {
		m := term(0)
		for i := 1; i < n; i++ {
			if v := term(i); v > m {
				m = v
			}
		}
		return m
	}
	numChunks := (n + sumChunk - 1) / sumChunk
	partials := make([]float64, numChunks)
	ForChunks(w, n, sumChunk, func(lo, hi int) {
		m := term(lo)
		for i := lo + 1; i < hi; i++ {
			if v := term(i); v > m {
				m = v
			}
		}
		partials[lo/sumChunk] = m
	})
	m := partials[0]
	for _, v := range partials[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
