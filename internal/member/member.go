// Package member implements the lease-based cluster membership
// directory behind obdreld's dynamic ring (-join mode).
//
// Each node keeps a Directory: a map from node URL to the freshest
// known (incarnation, state) pair plus a local last-contact stamp.
// Nodes exchange full directory snapshots over POST /v1/cluster/join
// (push-pull gossip: the request body is the sender's view, the
// response is the receiver's merged view), so any pair of exchanges
// converges both sides.
//
// Conflict resolution is last-writer-wins per node, ordered by
// incarnation: a higher incarnation always replaces a lower one, and
// at equal incarnations the worse state wins (dead > suspect >
// active). A node is the only authority that may bump its own
// incarnation — it does so at startup (wall-clock nanoseconds, so a
// restart is always newer) and to refute gossip that reports it
// suspect or dead.
//
// Liveness is local and lease-based: lastSeen is only refreshed by
// direct contact (an inbound exchange from the node, or a successful
// outbound exchange to it) or by learning a strictly newer
// incarnation. A member with no contact for lease/2 turns suspect;
// for a full lease, dead. Suspect members stay in the ring (serving
// is never gated on gossip); dead members leave the ring but remain
// as tombstones so their obituary out-gossips stale "active" entries.
//
// Every mutation that changes the member list bumps the local epoch.
// Epochs are per-node view versions, not a fleet consensus: merge
// takes max(local, remote) so they converge upward, but two nodes may
// legitimately disagree mid-gossip and status surfaces must degrade
// to per-node reporting rather than error.
package member

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a member's liveness state as seen by one directory.
type State int

const (
	Active  State = iota // lease current
	Suspect              // missed heartbeats for lease/2; still in the ring
	Dead                 // lease expired or graceful leave; out of the ring
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalJSON encodes the state as its lowercase name so the wire
// format survives reordering of the enum.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the lowercase names; unknown names decode as
// Dead so a newer peer's exotic state can never resurrect a node.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "active":
		*s = Active
	case "suspect":
		*s = Suspect
	default:
		*s = Dead
	}
	return nil
}

// worse reports whether a should displace b at equal incarnations.
func worse(a, b State) bool { return a > b }

// Info is one member's gossiped record.
type Info struct {
	Node        string `json:"node"`
	Incarnation int64  `json:"incarnation"`
	State       State  `json:"state"`
}

// List is a full directory snapshot: the push-pull gossip payload.
type List struct {
	From    string `json:"from"`  // sender's own node URL
	Epoch   uint64 `json:"epoch"` // sender's view version
	Members []Info `json:"members"`
}

// Change describes a directory mutation delivered to the OnChange
// callback. Alive is sorted and always includes the local node.
type Change struct {
	Epoch uint64
	Alive []string
}

type entry struct {
	info     Info
	lastSeen time.Time // local clock; zero for tombstones
}

// Directory is one node's membership view. All methods are safe for
// concurrent use.
type Directory struct {
	self  string
	lease time.Duration
	now   func() time.Time

	mu       sync.Mutex
	inc      int64 // our own incarnation
	left     bool  // graceful leave: advertise self as dead
	epoch    uint64
	members  map[string]*entry // everyone but self
	onChange func(Change)
}

// New builds a directory for self with the given lease. clock may be
// nil (wall clock); tests inject a fake. The initial incarnation is
// the clock's UnixNano so a restarted node always out-writes its
// previous life.
func New(self string, lease time.Duration, clock func() time.Time) *Directory {
	if clock == nil {
		clock = time.Now
	}
	if lease <= 0 {
		lease = 10 * time.Second
	}
	return &Directory{
		self:    self,
		lease:   lease,
		now:     clock,
		inc:     clock().UnixNano(),
		epoch:   1,
		members: make(map[string]*entry),
	}
}

// SetOnChange registers a callback invoked (outside the lock) after
// any mutation that bumped the epoch. At most one callback runs at a
// time per mutation; registration is not concurrency-safe with
// mutations and should happen before the directory is shared.
func (d *Directory) SetOnChange(fn func(Change)) { d.onChange = fn }

// Self returns the local node URL.
func (d *Directory) Self() string { return d.self }

// Lease returns the configured lease duration.
func (d *Directory) Lease() time.Duration { return d.lease }

// Epoch returns the current view version.
func (d *Directory) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Incarnation returns our own current incarnation.
func (d *Directory) Incarnation() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inc
}

// Alive returns the sorted set of non-dead members including self.
// Suspect members are included: suspicion delays nothing, only a
// confirmed lease expiry shrinks the ring.
func (d *Directory) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.aliveLocked()
}

func (d *Directory) aliveLocked() []string {
	out := make([]string, 0, len(d.members)+1)
	if !d.left {
		out = append(out, d.self)
	}
	for n, e := range d.members {
		if e.info.State != Dead {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the full gossip payload: self plus every known
// member (tombstones included, so obituaries propagate).
func (d *Directory) Snapshot() List {
	d.mu.Lock()
	defer d.mu.Unlock()
	selfState := Active
	if d.left {
		selfState = Dead
	}
	out := List{From: d.self, Epoch: d.epoch}
	out.Members = make([]Info, 0, len(d.members)+1)
	out.Members = append(out.Members, Info{Node: d.self, Incarnation: d.inc, State: selfState})
	for _, e := range d.members {
		out.Members = append(out.Members, e.info)
	}
	sort.Slice(out.Members, func(i, j int) bool { return out.Members[i].Node < out.Members[j].Node })
	return out
}

// Members returns a sorted copy of every known record including self
// and tombstones, for status surfaces.
func (d *Directory) Members() []Info {
	return d.Snapshot().Members
}

// Contact records direct, successful contact with node "now": an
// inbound exchange from it or a completed outbound exchange to it.
// Direct contact refreshes the lease and clears suspicion at the same
// incarnation; it cannot resurrect a dead record (rejoin requires a
// higher incarnation, which Merge handles).
func (d *Directory) Contact(node string) {
	if node == d.self || node == "" {
		return
	}
	d.mu.Lock()
	changed := false
	e, ok := d.members[node]
	switch {
	case !ok:
		d.members[node] = &entry{
			info:     Info{Node: node, Incarnation: 0, State: Active},
			lastSeen: d.now(),
		}
		changed = true
	case e.info.State == Dead:
		// Tombstone holds until the node rejoins with a newer
		// incarnation; refresh nothing.
	default:
		e.lastSeen = d.now()
		if e.info.State == Suspect {
			e.info.State = Active
			changed = true
		}
	}
	d.finish(changed)
}

// Merge folds a remote snapshot into the directory (last-writer-wins
// per node, higher incarnation first, worse state at ties) and
// reports whether the view changed. The caller should also Contact
// the sender if the snapshot arrived over a direct exchange.
func (d *Directory) Merge(remote List) bool {
	d.mu.Lock()
	changed := false
	if remote.Epoch > d.epoch {
		// Converge epochs upward so a stable fleet agrees on one
		// number; differing epochs mid-gossip are expected and only
		// degrade status reporting, never serving.
		d.epoch = remote.Epoch
	}
	for _, in := range remote.Members {
		if in.Node == d.self {
			// Refutation: someone thinks we are suspect or dead at an
			// incarnation as new as ours. Out-write them.
			if in.State != Active && in.Incarnation >= d.inc && !d.left {
				d.inc = in.Incarnation + 1
				changed = true
			}
			continue
		}
		e, ok := d.members[in.Node]
		switch {
		case !ok:
			seen := time.Time{}
			if in.State != Dead {
				seen = d.now() // fresh lease for a newly learned member
			}
			d.members[in.Node] = &entry{info: in, lastSeen: seen}
			changed = true
		case in.Incarnation > e.info.Incarnation:
			wasDead := e.info.State == Dead
			e.info = in
			if in.State != Dead {
				e.lastSeen = d.now()
			}
			if wasDead != (in.State == Dead) || !wasDead {
				changed = true
			}
		case in.Incarnation == e.info.Incarnation && worse(in.State, e.info.State):
			e.info.State = in.State
			changed = true
		}
	}
	d.finish(changed)
	return changed
}

// Sweep applies lease transitions against the injected clock: active
// members silent for lease/2 turn suspect, members silent for a full
// lease turn dead. Returns whether anything changed.
func (d *Directory) Sweep() bool {
	d.mu.Lock()
	now := d.now()
	changed := false
	for _, e := range d.members {
		if e.info.State == Dead {
			continue
		}
		silent := now.Sub(e.lastSeen)
		switch {
		case silent >= d.lease:
			e.info.State = Dead
			changed = true
		case silent >= d.lease/2 && e.info.State == Active:
			e.info.State = Suspect
			changed = true
		}
	}
	d.finish(changed)
	return changed
}

// Leave marks the local node dead at its current incarnation so the
// final gossip round carries our obituary (graceful drain). The
// directory keeps answering exchanges; it just stops advertising self
// as alive.
func (d *Directory) Leave() {
	d.mu.Lock()
	changed := !d.left
	d.left = true
	d.finish(changed)
}

// finish bumps the epoch if needed and releases the lock, then fires
// the change callback outside it.
func (d *Directory) finish(changed bool) {
	var ch Change
	var fn func(Change)
	if changed {
		d.epoch++
		fn = d.onChange
		ch = Change{Epoch: d.epoch, Alive: d.aliveLocked()}
	}
	d.mu.Unlock()
	if fn != nil {
		fn(ch)
	}
}

// Counts returns how many members (including self) are in each state.
func (d *Directory) Counts() (active, suspect, dead int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.left {
		dead++
	} else {
		active++
	}
	for _, e := range d.members {
		switch e.info.State {
		case Active:
			active++
		case Suspect:
			suspect++
		default:
			dead++
		}
	}
	return
}
