package member

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic lease
// transitions.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func stateOf(d *Directory, node string) (State, bool) {
	for _, m := range d.Members() {
		if m.Node == node {
			return m.State, true
		}
	}
	return 0, false
}

// TestLeaseLifecycle walks the full satellite path: join → active →
// missed heartbeats → suspect → lease expiry → dead → rejoin with a
// higher incarnation bumps the epoch and resurrects the member.
func TestLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	lease := 10 * time.Second
	d := New("http://a", lease, clk.Now)

	// Join: direct contact from an unknown node.
	d.Contact("http://b")
	if st, ok := stateOf(d, "http://b"); !ok || st != Active {
		t.Fatalf("after join: state=%v ok=%v, want active", st, ok)
	}
	if got := d.Alive(); len(got) != 2 {
		t.Fatalf("alive after join = %v, want 2 nodes", got)
	}
	epochJoined := d.Epoch()

	// Silent for lease/2: suspect, but still in the ring.
	clk.Advance(lease/2 + time.Second)
	if !d.Sweep() {
		t.Fatal("sweep after lease/2 should report a change")
	}
	if st, _ := stateOf(d, "http://b"); st != Suspect {
		t.Fatalf("state after lease/2 = %v, want suspect", st)
	}
	if got := d.Alive(); len(got) != 2 {
		t.Fatalf("suspect node must stay in the ring, alive = %v", got)
	}

	// Direct contact clears suspicion without an incarnation bump.
	d.Contact("http://b")
	if st, _ := stateOf(d, "http://b"); st != Active {
		t.Fatalf("state after contact = %v, want active", st)
	}

	// Silent for a full lease: dead, out of the ring.
	clk.Advance(lease + time.Second)
	d.Sweep()
	if st, _ := stateOf(d, "http://b"); st != Dead {
		t.Fatalf("state after lease expiry = %v, want dead", st)
	}
	if got := d.Alive(); len(got) != 1 || got[0] != "http://a" {
		t.Fatalf("alive after expiry = %v, want just self", got)
	}
	epochDead := d.Epoch()
	if epochDead <= epochJoined {
		t.Fatalf("death must bump epoch: joined=%d dead=%d", epochJoined, epochDead)
	}

	// Plain contact cannot resurrect a tombstone...
	d.Contact("http://b")
	if st, _ := stateOf(d, "http://b"); st != Dead {
		t.Fatalf("contact resurrected a tombstone: %v", st)
	}

	// ...but a rejoin with a higher incarnation does, bumping epoch.
	d.Merge(List{From: "http://b", Members: []Info{
		{Node: "http://b", Incarnation: clk.Now().UnixNano(), State: Active},
	}})
	if st, _ := stateOf(d, "http://b"); st != Active {
		t.Fatalf("state after rejoin = %v, want active", st)
	}
	if d.Epoch() <= epochDead {
		t.Fatalf("rejoin must bump epoch: dead=%d rejoined=%d", epochDead, d.Epoch())
	}
}

// TestMergeLWW exercises the conflict rules: higher incarnation wins,
// equal incarnations take the worse state, lower incarnations are
// ignored, and unknown dead records arrive as tombstones.
func TestMergeLWW(t *testing.T) {
	clk := newFakeClock()
	d := New("http://a", 10*time.Second, clk.Now)

	d.Merge(List{From: "http://b", Members: []Info{
		{Node: "http://b", Incarnation: 5, State: Active},
	}})

	// Equal incarnation, worse state: suspect displaces active.
	d.Merge(List{From: "http://c", Members: []Info{
		{Node: "http://b", Incarnation: 5, State: Suspect},
	}})
	if st, _ := stateOf(d, "http://b"); st != Suspect {
		t.Fatalf("equal-incarnation worse state should win, got %v", st)
	}

	// Equal incarnation, better state: ignored.
	d.Merge(List{From: "http://c", Members: []Info{
		{Node: "http://b", Incarnation: 5, State: Active},
	}})
	if st, _ := stateOf(d, "http://b"); st != Suspect {
		t.Fatalf("equal-incarnation better state must not win, got %v", st)
	}

	// Higher incarnation: wins outright, even back to active.
	d.Merge(List{From: "http://c", Members: []Info{
		{Node: "http://b", Incarnation: 6, State: Active},
	}})
	if st, _ := stateOf(d, "http://b"); st != Active {
		t.Fatalf("higher incarnation must win, got %v", st)
	}

	// Lower incarnation: ignored.
	d.Merge(List{From: "http://c", Members: []Info{
		{Node: "http://b", Incarnation: 2, State: Dead},
	}})
	if st, _ := stateOf(d, "http://b"); st != Active {
		t.Fatalf("lower incarnation must be ignored, got %v", st)
	}

	// Unknown dead node arrives as a tombstone, not an alive member.
	d.Merge(List{From: "http://c", Members: []Info{
		{Node: "http://x", Incarnation: 9, State: Dead},
	}})
	if st, ok := stateOf(d, "http://x"); !ok || st != Dead {
		t.Fatalf("unknown dead record should tombstone, got %v ok=%v", st, ok)
	}
	for _, n := range d.Alive() {
		if n == "http://x" {
			t.Fatal("tombstone leaked into alive set")
		}
	}
}

// TestRefutation: gossip reporting the local node suspect or dead at
// our incarnation (or newer) must bump our incarnation so the
// obituary is out-written.
func TestRefutation(t *testing.T) {
	clk := newFakeClock()
	d := New("http://a", 10*time.Second, clk.Now)
	inc := d.Incarnation()

	d.Merge(List{From: "http://b", Members: []Info{
		{Node: "http://a", Incarnation: inc, State: Dead},
	}})
	if got := d.Incarnation(); got <= inc {
		t.Fatalf("refutation must bump incarnation: %d -> %d", inc, got)
	}

	// Stale rumors about an older incarnation are ignored.
	cur := d.Incarnation()
	d.Merge(List{From: "http://b", Members: []Info{
		{Node: "http://a", Incarnation: cur - 10, State: Dead},
	}})
	if got := d.Incarnation(); got != cur {
		t.Fatalf("stale rumor must not bump incarnation: %d -> %d", cur, got)
	}

	// After a graceful Leave we stop refuting: the obituary is ours.
	d.Leave()
	cur = d.Incarnation()
	d.Merge(List{From: "http://b", Members: []Info{
		{Node: "http://a", Incarnation: cur, State: Dead},
	}})
	if got := d.Incarnation(); got != cur {
		t.Fatalf("left node must not refute its own obituary")
	}
	if snap := d.Snapshot(); snap.Members[0].State != Dead {
		t.Fatalf("left node must advertise itself dead, got %v", snap.Members[0].State)
	}
}

// TestPushPullConverges: a pair of snapshot exchanges makes two
// directories agree on the member list.
func TestPushPullConverges(t *testing.T) {
	clk := newFakeClock()
	a := New("http://a", 10*time.Second, clk.Now)
	b := New("http://b", 10*time.Second, clk.Now)
	a.Contact("http://c") // a knows something b doesn't

	// b -> a (push), a -> b (pull response).
	a.Merge(b.Snapshot())
	a.Contact("http://b")
	b.Merge(a.Snapshot())
	b.Contact("http://a")

	ga, gb := a.Alive(), b.Alive()
	if len(ga) != 3 || len(gb) != 3 {
		t.Fatalf("not converged: a=%v b=%v", ga, gb)
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("diverged member lists: a=%v b=%v", ga, gb)
		}
	}
}

// TestOnChangeFires: epoch-bumping mutations deliver a Change with a
// consistent alive set; non-mutations stay silent.
func TestOnChangeFires(t *testing.T) {
	clk := newFakeClock()
	d := New("http://a", 10*time.Second, clk.Now)
	var mu sync.Mutex
	var changes []Change
	d.SetOnChange(func(c Change) {
		mu.Lock()
		changes = append(changes, c)
		mu.Unlock()
	})

	d.Contact("http://b")
	d.Contact("http://b") // already active: no change
	d.Sweep()             // nothing stale: no change

	mu.Lock()
	defer mu.Unlock()
	if len(changes) != 1 {
		t.Fatalf("want exactly 1 change, got %d", len(changes))
	}
	if len(changes[0].Alive) != 2 {
		t.Fatalf("change alive = %v, want 2 nodes", changes[0].Alive)
	}
}

// TestConcurrentChurn hammers joins, leaves, merges, and sweeps from
// many goroutines; run under -race this is the satellite's
// concurrency gate. Assertions are minimal — the point is the race
// detector plus "directory never panics or deadlocks".
func TestConcurrentChurn(t *testing.T) {
	clk := newFakeClock()
	d := New("http://a", time.Second, clk.Now)
	d.SetOnChange(func(Change) {})
	nodes := []string{"http://b", "http://c", "http://d", "http://e"}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				n := nodes[(i+j)%len(nodes)]
				switch j % 5 {
				case 0:
					d.Contact(n)
				case 1:
					d.Merge(List{From: n, Members: []Info{
						{Node: n, Incarnation: int64(j), State: State(j % 3)},
					}})
				case 2:
					clk.Advance(100 * time.Millisecond)
					d.Sweep()
				case 3:
					d.Snapshot()
					d.Alive()
					d.Counts()
				case 4:
					d.Epoch()
					d.Members()
				}
			}
		}(i)
	}
	wg.Wait()

	// Every surviving record must still be one of the three states.
	for _, m := range d.Members() {
		if m.State < Active || m.State > Dead {
			t.Fatalf("invalid state %v for %s", m.State, m.Node)
		}
	}
}
