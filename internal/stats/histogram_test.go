package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.BinWidth() != 1 || h.Bins() != 10 {
		t.Error("geometry wrong")
	}
	h.Add(0.5)
	h.Add(0.7)
	h.Add(9.9)
	h.Add(-5)  // clamps into bin 0
	h.Add(100) // clamps into bin 9
	if h.Counts[0] != 3 || h.Counts[9] != 2 || h.N != 5 {
		t.Errorf("counts %v N %v", h.Counts, h.N)
	}
	if h.Mid(0) != 0.5 || h.Mid(9) != 9.5 {
		t.Error("Mid wrong")
	}
	if !approx(h.Prob(0), 0.6, 1e-12) {
		t.Errorf("Prob(0) = %v", h.Prob(0))
	}
	// Density must integrate to 1.
	sum := 0.0
	for i := 0; i < h.Bins(); i++ {
		sum += h.Density(i) * h.BinWidth()
	}
	if !approx(sum, 1, 1e-12) {
		t.Errorf("density integral = %v", sum)
	}
}

func TestHistogramValidates(t *testing.T) {
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("degenerate range should error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestHistogramMomentsMatchSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, _ := NewNormal(5, 0.7)
	h, _ := NewHistogram(5-5*0.7, 5+5*0.7, 200)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = n.Sample(rng)
		h.Add(xs[i])
	}
	m, v, _ := MeanVariance(xs)
	if !approx(h.Mean(), m, 1e-3) {
		t.Errorf("histogram mean %v vs sample %v", h.Mean(), m)
	}
	if !approx(h.Variance(), v, 0.01) {
		t.Errorf("histogram variance %v vs sample %v", h.Variance(), v)
	}
}

func TestRSquareGaussianFit(t *testing.T) {
	// A large normal sample histogram should fit its own PDF with
	// R² > 99% — the Fig. 4 BLOD property.
	rng := rand.New(rand.NewSource(4))
	n, _ := NewNormal(2.2, 0.0147)
	h, _ := NewHistogram(2.2-4*0.0147, 2.2+4*0.0147, 50)
	for i := 0; i < 20000; i++ {
		h.Add(n.Sample(rng))
	}
	fit, _ := NewNormal(h.Mean(), math.Sqrt(h.Variance()))
	if r2 := h.RSquareAgainst(fit.PDF); r2 < 0.99 {
		t.Errorf("Gaussian R² = %v, want > 0.99", r2)
	}
	// Against a badly wrong model the fit should be poor.
	bad, _ := NewNormal(2.2+0.05, 0.0147)
	if r2 := h.RSquareAgainst(bad.PDF); r2 > 0.5 {
		t.Errorf("bad-model R² = %v, want low", r2)
	}
}

func TestHistogram2DBasics(t *testing.T) {
	h, err := NewHistogram2D(0, 1, 4, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.1, 0.1)
	h.Add(0.9, 0.9)
	h.Add(-1, 2) // clamped to (0, 4)
	if h.N != 3 {
		t.Errorf("N = %v", h.N)
	}
	if !approx(h.Prob(0, 0), 1.0/3, 1e-12) {
		t.Errorf("Prob(0,0) = %v", h.Prob(0, 0))
	}
	mx := h.MarginalX()
	my := h.MarginalY()
	sx, sy := 0.0, 0.0
	for _, p := range mx {
		sx += p
	}
	for _, p := range my {
		sy += p
	}
	if !approx(sx, 1, 1e-12) || !approx(sy, 1, 1e-12) {
		t.Errorf("marginals sum to %v, %v", sx, sy)
	}
}

func TestHistogram2DValidates(t *testing.T) {
	if _, err := NewHistogram2D(0, 0, 4, 0, 1, 5); err == nil {
		t.Error("degenerate x range should error")
	}
	if _, err := NewHistogram2D(0, 1, 4, 0, 1, 0); err == nil {
		t.Error("zero y bins should error")
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h, _ := NewHistogram2D(-4, 4, 20, -4, 4, 20)
	for i := 0; i < 200000; i++ {
		h.Add(rng.NormFloat64(), rng.NormFloat64())
	}
	if mi := h.MutualInformation(); mi > 0.01 {
		t.Errorf("independent MI = %v, want ~0", mi)
	}
	if e := h.MaxNormalizedProductError(); e > 0.12 {
		t.Errorf("independent product error = %v", e)
	}
}

func TestMutualInformationDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h, _ := NewHistogram2D(-4, 4, 20, -4, 4, 20)
	for i := 0; i < 200000; i++ {
		x := rng.NormFloat64()
		// Strongly correlated pair.
		y := 0.95*x + 0.31*rng.NormFloat64()
		h.Add(x, y)
	}
	if mi := h.MutualInformation(); mi < 0.5 {
		t.Errorf("dependent MI = %v, want large", mi)
	}
	if e := h.MaxNormalizedProductError(); e < 0.2 {
		t.Errorf("dependent product error = %v, want large", e)
	}
}

func TestMutualInformationEmpty(t *testing.T) {
	h, _ := NewHistogram2D(0, 1, 4, 0, 1, 4)
	if mi := h.MutualInformation(); mi != 0 {
		t.Errorf("empty MI = %v", mi)
	}
	if e := h.MaxNormalizedProductError(); e != 0 {
		t.Errorf("empty product error = %v", e)
	}
}
