package stats

import (
	"errors"
	"math"
	"sort"
)

// FitWeibull estimates the two-parameter Weibull distribution best
// describing a sample of failure times, using median-rank regression
// (the standard probability-plot technique of reliability
// engineering, cf. Meeker & Escobar [39]): with order statistics
// t_(1) ≤ … ≤ t_(n) and Bernard's median ranks
// F_i = (i - 0.3)/(n + 0.4), the line
//
//	ln(-ln(1 - F_i)) = β·ln t_(i) - β·ln α
//
// is fitted by least squares; the slope is the Weibull shape β and
// the intercept yields the scale α. The returned r2 is the regression
// coefficient of determination — near 1 means the sample really is
// Weibull, which is how the chip-level "weakest-link" behaviour shows
// up in sampled lifetimes.
func FitWeibull(times []float64) (w Weibull, r2 float64, err error) {
	if len(times) < 3 {
		return Weibull{}, 0, errors.New("stats: FitWeibull needs at least 3 samples")
	}
	ts := append([]float64(nil), times...)
	sort.Float64s(ts)
	if ts[0] <= 0 {
		return Weibull{}, 0, errors.New("stats: FitWeibull requires positive failure times")
	}
	n := float64(len(ts))
	var sx, sy, sxx, sxy, syy float64
	for i, t := range ts {
		f := (float64(i+1) - 0.3) / (n + 0.4)
		x := math.Log(t)
		y := math.Log(-math.Log(1 - f))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den <= 0 {
		return Weibull{}, 0, errors.New("stats: degenerate sample (all failure times equal)")
	}
	beta := (n*sxy - sx*sy) / den
	if !(beta > 0) {
		return Weibull{}, 0, errors.New("stats: fitted non-positive Weibull shape")
	}
	intercept := (sy - beta*sx) / n
	alpha := math.Exp(-intercept / beta)
	w, err = NewWeibull(alpha, beta)
	if err != nil {
		return Weibull{}, 0, err
	}
	// R² of the probability-plot regression.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i, t := range ts {
		f := (float64(i+1) - 0.3) / (n + 0.4)
		y := math.Log(-math.Log(1 - f))
		pred := beta*math.Log(t) + intercept
		ssRes += (y - pred) * (y - pred)
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return w, r2, nil
}
