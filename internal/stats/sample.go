package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1 denominator) sample variance.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmptySample
	}
	m, _ := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// MeanVariance returns both in one pass over the data (Welford).
func MeanVariance(xs []float64) (mean, variance float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrEmptySample
	}
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	return m, m2 / float64(len(xs)-1), nil
}

// Correlation returns the Pearson correlation coefficient of the
// paired samples xs, ys.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, ErrEmptySample
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Quantile returns the p-quantile of the sample by linear
// interpolation of the order statistics (type-7, the R default). The
// input is not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 1 {
		return sorted[len(sorted)-1], nil
	}
	h := p * float64(len(sorted)-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac, nil
}

// ECDF is an empirical cumulative distribution function built from a
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Min and Max return the sample range.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// KSDistance returns the Kolmogorov–Smirnov statistic
// sup_x |ECDF(x) - cdf(x)| evaluated at the sample points (both
// one-sided gaps at each jump are checked).
func (e *ECDF) KSDistance(cdf func(float64) float64) float64 {
	n := float64(len(e.sorted))
	max := 0.0
	for i, x := range e.sorted {
		c := cdf(x)
		lo := math.Abs(c - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - c)
		if lo > max {
			max = lo
		}
		if hi > max {
			max = hi
		}
	}
	return max
}
