// Package stats provides the probability distributions and empirical
// statistics the OBD reliability analysis relies on: normal, chi-
// square, Weibull and exponential distributions; histograms (1-D and
// 2-D); goodness-of-fit and information measures.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"obdrel/internal/mathx"
)

// Dist is a univariate continuous distribution.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile for p in (0, 1).
	Quantile(p float64) float64
	// Mean returns the expectation.
	Mean() float64
	// Variance returns the variance.
	Variance() float64
}

// Normal is the N(Mu, Sigma²) distribution.
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns a normal distribution, validating sigma > 0.
func NewNormal(mu, sigma float64) (Normal, error) {
	if !(sigma > 0) || math.IsNaN(mu) {
		return Normal{}, fmt.Errorf("stats: invalid normal parameters mu=%v sigma=%v", mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// PDF implements Dist.
func (n Normal) PDF(x float64) float64 {
	return mathx.NormPDF((x-n.Mu)/n.Sigma) / n.Sigma
}

// CDF implements Dist.
func (n Normal) CDF(x float64) float64 {
	return mathx.NormCDF((x - n.Mu) / n.Sigma)
}

// Quantile implements Dist.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*mathx.NormQuantile(p)
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// Variance implements Dist.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Sample draws one variate using rng.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// ChiSquared is the chi-square distribution with K degrees of freedom.
// K may be fractional (as produced by Satterthwaite-style moment
// matching of quadratic forms).
type ChiSquared struct {
	K float64
}

// NewChiSquared validates k > 0.
func NewChiSquared(k float64) (ChiSquared, error) {
	if !(k > 0) {
		return ChiSquared{}, fmt.Errorf("stats: invalid chi-square dof %v", k)
	}
	return ChiSquared{K: k}, nil
}

// PDF implements Dist.
func (c ChiSquared) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case c.K < 2:
			return math.Inf(1)
		case c.K == 2:
			return 0.5
		}
		return 0
	}
	half := c.K / 2
	lg, _ := math.Lgamma(half)
	return math.Exp((half-1)*math.Log(x) - x/2 - half*math.Ln2 - lg)
}

// CDF implements Dist.
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p, err := mathx.GammaP(c.K/2, x/2)
	if err != nil {
		return math.NaN()
	}
	return p
}

// Quantile implements Dist. It inverts the CDF by bisection on a
// bracket grown from the mean; accuracy is ~1e-12 relative.
func (c ChiSquared) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	hi := c.K + 10
	for c.CDF(hi) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	q, err := mathx.Bisect(func(x float64) float64 { return c.CDF(x) - p }, 0, hi, 1e-12*(1+hi), 400)
	if err != nil {
		return math.NaN()
	}
	return q
}

// Mean implements Dist.
func (c ChiSquared) Mean() float64 { return c.K }

// Variance implements Dist.
func (c ChiSquared) Variance() float64 { return 2 * c.K }

// Sample draws one variate. For integral K it sums squared normals;
// otherwise it uses the Marsaglia-Tsang gamma sampler with shape K/2,
// scale 2.
func (c ChiSquared) Sample(rng *rand.Rand) float64 {
	return 2 * sampleGamma(c.K/2, rng)
}

// sampleGamma draws from Gamma(shape, 1) via Marsaglia & Tsang (2000),
// with the standard boost for shape < 1.
func sampleGamma(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	cc := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + cc*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ShiftedScaledChi2 is the distribution of c0 + a·X where
// X ~ ChiSquared(k). It models the BLOD sample variance v_j ≈
// λ_r² + â·χ²_b̂ per the paper's Eq. (29).
type ShiftedScaledChi2 struct {
	C0, A float64
	Chi2  ChiSquared
}

// NewShiftedScaledChi2 validates a > 0, k > 0.
func NewShiftedScaledChi2(c0, a, k float64) (ShiftedScaledChi2, error) {
	if !(a > 0) {
		return ShiftedScaledChi2{}, fmt.Errorf("stats: invalid chi-square scale %v", a)
	}
	chi, err := NewChiSquared(k)
	if err != nil {
		return ShiftedScaledChi2{}, err
	}
	return ShiftedScaledChi2{C0: c0, A: a, Chi2: chi}, nil
}

// PDF implements Dist.
func (s ShiftedScaledChi2) PDF(x float64) float64 {
	return s.Chi2.PDF((x-s.C0)/s.A) / s.A
}

// CDF implements Dist.
func (s ShiftedScaledChi2) CDF(x float64) float64 {
	return s.Chi2.CDF((x - s.C0) / s.A)
}

// Quantile implements Dist.
func (s ShiftedScaledChi2) Quantile(p float64) float64 {
	return s.C0 + s.A*s.Chi2.Quantile(p)
}

// Mean implements Dist.
func (s ShiftedScaledChi2) Mean() float64 { return s.C0 + s.A*s.Chi2.K }

// Variance implements Dist.
func (s ShiftedScaledChi2) Variance() float64 { return s.A * s.A * 2 * s.Chi2.K }

// Sample draws one variate.
func (s ShiftedScaledChi2) Sample(rng *rand.Rand) float64 {
	return s.C0 + s.A*s.Chi2.Sample(rng)
}

// Degenerate is the point mass at V. It models the BLOD variance of a
// block fully contained in a single correlation grid, where the
// spatial quadratic form vanishes and v_j = λ_r² deterministically.
type Degenerate struct {
	V float64
}

// PDF implements Dist; it is zero everywhere except the atom, where
// the density is not finite — callers integrate Degenerate
// analytically instead of via its PDF.
func (d Degenerate) PDF(x float64) float64 {
	if x == d.V {
		return math.Inf(1)
	}
	return 0
}

// CDF implements Dist.
func (d Degenerate) CDF(x float64) float64 {
	if x < d.V {
		return 0
	}
	return 1
}

// Quantile implements Dist.
func (d Degenerate) Quantile(p float64) float64 { return d.V }

// Mean implements Dist.
func (d Degenerate) Mean() float64 { return d.V }

// Variance implements Dist.
func (d Degenerate) Variance() float64 { return 0 }

// Weibull is the two-parameter Weibull distribution with
// CDF F(t) = 1 - exp(-(t/Scale)^Shape), t >= 0. Scale is the
// characteristic life (63.2% point); Shape is the slope β.
type Weibull struct {
	Scale, Shape float64
}

// NewWeibull validates scale > 0, shape > 0.
func NewWeibull(scale, shape float64) (Weibull, error) {
	if !(scale > 0) || !(shape > 0) {
		return Weibull{}, fmt.Errorf("stats: invalid Weibull parameters scale=%v shape=%v", scale, shape)
	}
	return Weibull{Scale: scale, Shape: shape}, nil
}

// PDF implements Dist.
func (w Weibull) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		switch {
		case w.Shape < 1:
			return math.Inf(1)
		case w.Shape == 1:
			return 1 / w.Scale
		}
		return 0
	}
	z := t / w.Scale
	return w.Shape / w.Scale * math.Pow(z, w.Shape-1) * math.Exp(-math.Pow(z, w.Shape))
}

// CDF implements Dist.
func (w Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/w.Scale, w.Shape))
}

// Quantile implements Dist.
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

// Mean implements Dist.
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// Variance implements Dist.
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// Sample draws one variate by inversion.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
}

// ErrEmptySample reports statistics requested on an empty sample.
var ErrEmptySample = errors.New("stats: empty sample")
