package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitWeibullRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range []struct{ scale, shape float64 }{
		{100, 1.3}, {1e6, 0.8}, {42, 3.5},
	} {
		w, _ := NewWeibull(c.scale, c.shape)
		n := 20000
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = w.Sample(rng)
		}
		fit, r2, err := FitWeibull(ts)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(fit.Scale, c.scale, 0.03) {
			t.Errorf("scale %v fitted as %v", c.scale, fit.Scale)
		}
		if !approx(fit.Shape, c.shape, 0.03) {
			t.Errorf("shape %v fitted as %v", c.shape, fit.Shape)
		}
		if r2 < 0.99 {
			t.Errorf("Weibull sample fit R² = %v", r2)
		}
	}
}

func TestFitWeibullRejectsBadInput(t *testing.T) {
	if _, _, err := FitWeibull([]float64{1, 2}); err == nil {
		t.Error("too-small sample should error")
	}
	if _, _, err := FitWeibull([]float64{0, 1, 2}); err == nil {
		t.Error("non-positive time should error")
	}
	if _, _, err := FitWeibull([]float64{5, 5, 5}); err == nil {
		t.Error("constant sample should error")
	}
}

func TestFitWeibullNonWeibullLowR2(t *testing.T) {
	// A bimodal sample (two well-separated Weibull populations)
	// should fit visibly worse than a pure sample.
	rng := rand.New(rand.NewSource(8))
	w1, _ := NewWeibull(1, 8)
	w2, _ := NewWeibull(1e6, 8)
	ts := make([]float64, 4000)
	for i := range ts {
		if i%2 == 0 {
			ts[i] = w1.Sample(rng)
		} else {
			ts[i] = w2.Sample(rng)
		}
	}
	_, r2, err := FitWeibull(ts)
	if err != nil {
		t.Fatal(err)
	}
	if r2 > 0.9 {
		t.Errorf("bimodal sample fit suspiciously well: R² = %v", r2)
	}
}

// Property: scaling all times by a constant scales the fitted scale
// and leaves the shape invariant.
func TestFitWeibullScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, _ := NewWeibull(10, 1.5)
		ts := make([]float64, 500)
		for i := range ts {
			ts[i] = w.Sample(rng)
		}
		fit1, _, err1 := FitWeibull(ts)
		scaled := make([]float64, len(ts))
		for i := range ts {
			scaled[i] = ts[i] * 1000
		}
		fit2, _, err2 := FitWeibull(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(fit2.Shape, fit1.Shape, 1e-9) && approx(fit2.Scale, fit1.Scale*1000, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
