package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// checkDist verifies the generic distribution axioms: CDF is monotone
// from ~0 to ~1, quantile inverts the CDF, PDF integrates to ~1 and
// numerically differentiates the CDF.
func checkDist(t *testing.T, name string, d Dist, lo, hi float64) {
	t.Helper()
	prev := d.CDF(lo)
	if prev < -1e-12 || prev > 1+1e-12 {
		t.Errorf("%s: CDF(%v) = %v out of [0,1]", name, lo, prev)
	}
	n := 400
	step := (hi - lo) / float64(n)
	integral := 0.0
	for i := 1; i <= n; i++ {
		x := lo + float64(i)*step
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("%s: CDF not monotone at %v", name, x)
		}
		prev = c
		integral += d.PDF(x-step/2) * step
	}
	// PDF must be consistent with the CDF over the covered range.
	if want := d.CDF(hi) - d.CDF(lo); !approx(integral, want, 0.02) {
		t.Errorf("%s: PDF integrates to %v over [%v,%v], CDF difference is %v",
			name, integral, lo, hi, want)
	}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		q := d.Quantile(p)
		if got := d.CDF(q); !approx(got, p, 1e-6) {
			t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, got)
		}
	}
}

func TestNormalDist(t *testing.T) {
	n, err := NewNormal(2.2, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	checkDist(t, "Normal", n, 2.2-6*0.03, 2.2+6*0.03)
	if n.Mean() != 2.2 || !approx(n.Variance(), 0.0009, 1e-12) {
		t.Error("Normal moments wrong")
	}
}

func TestNewNormalValidates(t *testing.T) {
	if _, err := NewNormal(0, 0); err == nil {
		t.Error("sigma=0 should error")
	}
	if _, err := NewNormal(0, -1); err == nil {
		t.Error("sigma<0 should error")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("NaN mu should error")
	}
}

func TestChiSquaredDist(t *testing.T) {
	for _, k := range []float64{1, 2, 3.7, 10, 50} {
		c, err := NewChiSquared(k)
		if err != nil {
			t.Fatal(err)
		}
		lo := 1e-9
		if k < 2 {
			// The density is singular at 0 for k < 2; start the
			// PDF/CDF consistency sweep past the singularity.
			lo = 0.05
		}
		hi := k + 12*math.Sqrt(2*k)
		checkDist(t, "Chi2", c, lo, hi)
		if !approx(c.Mean(), k, 1e-12) || !approx(c.Variance(), 2*k, 1e-12) {
			t.Errorf("Chi2(%v) moments wrong", k)
		}
	}
}

func TestChiSquaredKnownValues(t *testing.T) {
	// Chi2(2) is Exponential(1/2): CDF(x) = 1 - exp(-x/2).
	c, _ := NewChiSquared(2)
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := c.CDF(x); !approx(got, want, 1e-10) {
			t.Errorf("Chi2(2).CDF(%v) = %v, want %v", x, got, want)
		}
	}
	if c.CDF(-1) != 0 {
		t.Error("Chi2 CDF should be 0 for negative x")
	}
	if c.PDF(-1) != 0 {
		t.Error("Chi2 PDF should be 0 for negative x")
	}
}

func TestChiSquaredSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []float64{0.8, 2, 7.3} {
		c, _ := NewChiSquared(k)
		n := 200000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = c.Sample(rng)
		}
		m, v, err := MeanVariance(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(m, k, 0.03) {
			t.Errorf("Chi2(%v) sample mean %v", k, m)
		}
		if !approx(v, 2*k, 0.06) {
			t.Errorf("Chi2(%v) sample variance %v want %v", k, v, 2*k)
		}
	}
}

func TestShiftedScaledChi2(t *testing.T) {
	s, err := NewShiftedScaledChi2(0.5, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkDist(t, "ShiftedScaledChi2", s, 0.5+1e-9, 0.5+0.1*(4+12*math.Sqrt(8)))
	if !approx(s.Mean(), 0.5+0.4, 1e-12) {
		t.Errorf("mean %v", s.Mean())
	}
	if !approx(s.Variance(), 0.01*8, 1e-12) {
		t.Errorf("variance %v", s.Variance())
	}
	if _, err := NewShiftedScaledChi2(0, -1, 4); err == nil {
		t.Error("negative scale should error")
	}
	if _, err := NewShiftedScaledChi2(0, 1, 0); err == nil {
		t.Error("zero dof should error")
	}
}

func TestDegenerate(t *testing.T) {
	d := Degenerate{V: 3}
	if d.CDF(2.999) != 0 || d.CDF(3) != 1 || d.CDF(4) != 1 {
		t.Error("Degenerate CDF wrong")
	}
	if d.Quantile(0.5) != 3 || d.Mean() != 3 || d.Variance() != 0 {
		t.Error("Degenerate moments wrong")
	}
}

func TestWeibullDist(t *testing.T) {
	w, err := NewWeibull(100, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	checkDist(t, "Weibull", w, 1e-9, 100*math.Pow(-math.Log(1e-9), 1/1.32)*1.2)
	// Characteristic life: F(scale) = 1 - 1/e.
	if got := w.CDF(100); !approx(got, 1-1/math.E, 1e-12) {
		t.Errorf("CDF at scale = %v", got)
	}
	if _, err := NewWeibull(-1, 1); err == nil {
		t.Error("negative scale should error")
	}
	if _, err := NewWeibull(1, 0); err == nil {
		t.Error("zero shape should error")
	}
}

func TestWeibullSampleAgainstCDFProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w, _ := NewWeibull(5, 2)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = w.Sample(rng)
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	if ks := e.KSDistance(w.CDF); ks > 0.01 {
		t.Errorf("Weibull sample KS distance %v", ks)
	}
}

func TestQuantileCDFRoundTripProperty(t *testing.T) {
	f := func(rmu, rsig, rp float64) bool {
		mu := math.Mod(rmu, 100)
		sigma := 0.01 + math.Abs(math.Mod(rsig, 10))
		p := 0.001 + 0.998*math.Abs(math.Mod(rp, 1))
		n, err := NewNormal(mu, sigma)
		if err != nil {
			return false
		}
		return approx(n.CDF(n.Quantile(p)), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
