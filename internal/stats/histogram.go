package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width 1-D histogram over [Lo, Hi). Values
// outside the range are clamped into the end bins, so every Add is
// counted; that matches the paper's use of histograms as truncated
// frequency distributions (Section IV-A).
type Histogram struct {
	Lo, Hi float64
	Counts []float64
	N      float64
}

// NewHistogram returns a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) || bins <= 0 {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinIndex returns the bin x falls into, clamped to the valid range.
func (h *Histogram) BinIndex(x float64) int {
	i := int((x - h.Lo) / h.BinWidth())
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Mid returns the midpoint of bin i.
func (h *Histogram) Mid(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records an observation with weight w.
func (h *Histogram) AddWeighted(x, w float64) {
	h.Counts[h.BinIndex(x)] += w
	h.N += w
}

// Density returns the normalized density of bin i (counts integrate
// to 1 over the histogram range).
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return h.Counts[i] / (h.N * h.BinWidth())
}

// Prob returns the probability mass of bin i.
func (h *Histogram) Prob(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return h.Counts[i] / h.N
}

// Mean returns the histogram mean using bin midpoints.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	s := 0.0
	for i, c := range h.Counts {
		s += c * h.Mid(i)
	}
	return s / h.N
}

// Variance returns the histogram variance using bin midpoints
// (population form, since bins aggregate many observations).
func (h *Histogram) Variance() float64 {
	if h.N == 0 {
		return 0
	}
	m := h.Mean()
	s := 0.0
	for i, c := range h.Counts {
		d := h.Mid(i) - m
		s += c * d * d
	}
	return s / h.N
}

// RSquareAgainst returns the R² goodness of fit between the histogram
// densities and the model density evaluated at bin midpoints. This is
// the fit measure the paper quotes for the BLOD Gaussian property
// (Fig. 4: 99.8% / 99.5%).
func (h *Histogram) RSquareAgainst(pdf func(float64) float64) float64 {
	if h.N == 0 {
		return 0
	}
	n := len(h.Counts)
	obs := make([]float64, n)
	fit := make([]float64, n)
	var mean float64
	for i := range h.Counts {
		obs[i] = h.Density(i)
		fit[i] = pdf(h.Mid(i))
		mean += obs[i]
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i := range obs {
		ssRes += (obs[i] - fit[i]) * (obs[i] - fit[i])
		ssTot += (obs[i] - mean) * (obs[i] - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Histogram2D is a fixed-width 2-D histogram over
// [XLo, XHi) × [YLo, YHi), used to build the numerical joint PDF of
// (u_j, v_j) for the st_MC engine and the Fig. 6/7 experiments.
type Histogram2D struct {
	XLo, XHi, YLo, YHi float64
	XBins, YBins       int
	Counts             []float64
	N                  float64
}

// NewHistogram2D returns an xBins×yBins 2-D histogram.
func NewHistogram2D(xlo, xhi float64, xBins int, ylo, yhi float64, yBins int) (*Histogram2D, error) {
	if !(xhi > xlo) || !(yhi > ylo) || xBins <= 0 || yBins <= 0 {
		return nil, fmt.Errorf("stats: invalid 2-D histogram [%v,%v)×[%v,%v) %d×%d",
			xlo, xhi, ylo, yhi, xBins, yBins)
	}
	return &Histogram2D{
		XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi,
		XBins: xBins, YBins: yBins,
		Counts: make([]float64, xBins*yBins),
	}, nil
}

// XWidth and YWidth return bin widths.
func (h *Histogram2D) XWidth() float64 { return (h.XHi - h.XLo) / float64(h.XBins) }

// YWidth returns the y bin width.
func (h *Histogram2D) YWidth() float64 { return (h.YHi - h.YLo) / float64(h.YBins) }

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Add records one (x, y) observation; coordinates are clamped into
// the edge bins.
func (h *Histogram2D) Add(x, y float64) {
	i := clampIdx(int((x-h.XLo)/h.XWidth()), h.XBins)
	j := clampIdx(int((y-h.YLo)/h.YWidth()), h.YBins)
	h.Counts[i*h.YBins+j]++
	h.N++
}

// XMid and YMid return bin midpoints.
func (h *Histogram2D) XMid(i int) float64 { return h.XLo + (float64(i)+0.5)*h.XWidth() }

// YMid returns the midpoint of y-bin j.
func (h *Histogram2D) YMid(j int) float64 { return h.YLo + (float64(j)+0.5)*h.YWidth() }

// Prob returns the joint probability mass of cell (i, j).
func (h *Histogram2D) Prob(i, j int) float64 {
	if h.N == 0 {
		return 0
	}
	return h.Counts[i*h.YBins+j] / h.N
}

// Density returns the joint density of cell (i, j).
func (h *Histogram2D) Density(i, j int) float64 {
	return h.Prob(i, j) / (h.XWidth() * h.YWidth())
}

// MarginalX returns the x marginal probability masses.
func (h *Histogram2D) MarginalX() []float64 {
	out := make([]float64, h.XBins)
	for i := 0; i < h.XBins; i++ {
		for j := 0; j < h.YBins; j++ {
			out[i] += h.Prob(i, j)
		}
	}
	return out
}

// MarginalY returns the y marginal probability masses.
func (h *Histogram2D) MarginalY() []float64 {
	out := make([]float64, h.YBins)
	for j := 0; j < h.YBins; j++ {
		for i := 0; i < h.XBins; i++ {
			out[j] += h.Prob(i, j)
		}
	}
	return out
}

// MutualInformation estimates I(X;Y) in nats from the 2-D histogram:
// Σ p(i,j) ln(p(i,j) / (p(i)p(j))). This is the measure the paper
// quotes (0.003) as evidence that u_j and v_j are nearly independent.
func (h *Histogram2D) MutualInformation() float64 {
	px := h.MarginalX()
	py := h.MarginalY()
	mi := 0.0
	for i := 0; i < h.XBins; i++ {
		for j := 0; j < h.YBins; j++ {
			p := h.Prob(i, j)
			if p == 0 || px[i] == 0 || py[j] == 0 {
				continue
			}
			mi += p * math.Log(p/(px[i]*py[j]))
		}
	}
	if mi < 0 { // guard against rounding
		mi = 0
	}
	return mi
}

// MaxNormalizedProductError returns max over cells of
// |p(i,j) - p(i)p(j)| / max p(i,j) — the Fig. 7 error measure
// (normalized w.r.t. the peak joint probability).
func (h *Histogram2D) MaxNormalizedProductError() float64 {
	px := h.MarginalX()
	py := h.MarginalY()
	peak := 0.0
	for i := 0; i < h.XBins; i++ {
		for j := 0; j < h.YBins; j++ {
			if p := h.Prob(i, j); p > peak {
				peak = p
			}
		}
	}
	if peak == 0 {
		return 0
	}
	max := 0.0
	for i := 0; i < h.XBins; i++ {
		for j := 0; j < h.YBins; j++ {
			if e := math.Abs(h.Prob(i, j) - px[i]*py[j]); e > max {
				max = e
			}
		}
	}
	return max / peak
}
