package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || !approx(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, %v", v, err)
	}
	m2, v2, err := MeanVariance(xs)
	if err != nil || !approx(m2, m, 1e-12) || !approx(v2, v, 1e-12) {
		t.Errorf("MeanVariance = %v, %v, %v", m2, v2, err)
	}
}

func TestEmptySampleErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmptySample {
		t.Error("Mean(nil) should return ErrEmptySample")
	}
	if _, err := Variance([]float64{1}); err != ErrEmptySample {
		t.Error("Variance of single value should error")
	}
	if _, _, err := MeanVariance(nil); err != ErrEmptySample {
		t.Error("MeanVariance(nil) should error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err != ErrEmptySample {
		t.Error("Correlation of single pair should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmptySample {
		t.Error("Quantile(nil) should error")
	}
	if _, err := NewECDF(nil); err != ErrEmptySample {
		t.Error("NewECDF(nil) should error")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil || !approx(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	zs := []float64{10, 8, 6, 4, 2}
	r, _ = Correlation(xs, zs)
	if !approx(r, -1, 1e-12) {
		t.Errorf("perfect anti-correlation = %v", r)
	}
	// Constant series has zero correlation by convention.
	cs := []float64{3, 3, 3, 3, 3}
	r, err = Correlation(xs, cs)
	if err != nil || r != 0 {
		t.Errorf("constant series correlation = %v, %v", r, err)
	}
}

func TestCorrelationIndependentSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.02 {
		t.Errorf("independent correlation = %v", r)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil || q != 3 {
		t.Errorf("median = %v", q)
	}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q, _ := Quantile(xs, 1); q != 5 {
		t.Errorf("max = %v", q)
	}
	if q, _ := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile modified its input")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Error("ECDF metadata wrong")
	}
}

func TestKSDistanceSelf(t *testing.T) {
	// KS distance of a large uniform sample against the uniform CDF
	// should be small (~1.6/sqrt(n) at 99% confidence).
	rng := rand.New(rand.NewSource(9))
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	e, _ := NewECDF(xs)
	ks := e.KSDistance(func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if ks > 1.63/math.Sqrt(float64(n)) {
		t.Errorf("uniform KS distance %v too large", ks)
	}
}

// Property: mean of shifted sample shifts by the same constant;
// variance is shift-invariant.
func TestSampleShiftProperty(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		shift = math.Mod(shift, 1e6)
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + shift
		}
		mx, vx, err1 := MeanVariance(xs)
		my, vy, err2 := MeanVariance(ys)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(my, mx+shift, 1e-6) && approx(vy, vx, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
