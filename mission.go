package obdrel

import (
	"context"
	"errors"
	"fmt"
	"math"

	"obdrel/internal/blod"
	"obdrel/internal/core"
	"obdrel/internal/floorplan"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// Mode is one operating mode of a mission profile: a supply voltage,
// an activity scaling applied to every block, and the fraction of
// operating time spent in the mode.
type Mode struct {
	Name string
	// VDD is the mode's supply voltage (V).
	VDD float64
	// ActivityScale multiplies each block's switching activity
	// (results clamp to [0, 1]); 1 is the design's nominal workload.
	ActivityScale float64
	// Fraction is the share of operating time, in (0, 1]; the modes'
	// fractions must sum to 1.
	Fraction float64
}

// NewMissionAnalyzer characterizes a design under a duty-cycled
// mission profile instead of a single worst-case operating point.
// Each mode gets its own power/thermal solve and block-level Weibull
// characterization; the per-mode characteristic lives combine by
// linear damage accumulation (Miner's rule):
//
//	1/α_eff,j = Σ_m fraction_m / α_{j,m}
//
// so a block ages at each mode's rate for that mode's share of time.
// The per-block slope b is damage-weighted across modes (its spread
// over realistic mode temperatures is a few percent, so the
// approximation is mild; the dominant mode dominates the weight). The
// same combination applies to the extrinsic population when
// configured.
//
// The returned Analyzer answers all the usual queries; reported block
// temperatures are the fraction-weighted means with the max taken
// across modes, and the stored temperature field belongs to the
// highest-power mode.
func NewMissionAnalyzer(d *Design, cfg *Config, modes []Mode) (*Analyzer, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateModes(modes); err != nil {
		return nil, err
	}
	fd, err := d.internal()
	if err != nil {
		return nil, err
	}
	tech := cfg.Tech
	if tech == nil {
		tech = obd.DefaultTech()
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	pm := cfg.Power
	if pm == nil {
		pm = power.Default()
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	ts := cfg.Thermal
	if ts == nil {
		ts = thermal.DefaultSolver()
	}

	n := len(fd.Blocks)
	info := make([]BlockInfo, n)
	for i := range info {
		info[i] = BlockInfo{
			Name:     fd.Blocks[i].Name,
			Devices:  fd.Blocks[i].Devices,
			MaxTempC: math.Inf(-1),
		}
	}
	// Per-block accumulators: damage rate Σ f/α, damage-weighted b,
	// extrinsic damage rate.
	damage := make([]float64, n)
	bWeighted := make([]float64, n)
	extDamage := make([]float64, n)
	var (
		bestField *thermal.Field
		bestPower float64
	)
	for _, mode := range modes {
		scaled := *fd
		scaled.Blocks = append([]floorplan.Block(nil), fd.Blocks...)
		for i := range scaled.Blocks {
			a := scaled.Blocks[i].Activity * mode.ActivityScale
			if a > 1 {
				a = 1
			}
			scaled.Blocks[i].Activity = a
		}
		coupled, err := ts.SolveCoupled(&scaled, func(temps []float64) ([]float64, error) {
			return pm.DesignPowers(&scaled, mode.VDD, temps)
		}, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("obdrel: mode %q thermal analysis: %w", mode.Name, err)
		}
		if tot := power.Total(coupled.Powers); tot > bestPower {
			bestPower = tot
			bestField = coupled.Field
		}
		for j := 0; j < n; j++ {
			tBlock := coupled.BlockMean[j]
			if cfg.UseBlockMaxTemp {
				tBlock = coupled.BlockMax[j]
			}
			p, err := tech.Characterize(tBlock, mode.VDD)
			if err != nil {
				return nil, fmt.Errorf("obdrel: mode %q block %q: %w", mode.Name, fd.Blocks[j].Name, err)
			}
			w := mode.Fraction / p.Alpha
			damage[j] += w
			bWeighted[j] += w * p.B
			info[j].MeanTempC += mode.Fraction * coupled.BlockMean[j]
			info[j].PowerW += mode.Fraction * coupled.Powers[j]
			if coupled.BlockMax[j] > info[j].MaxTempC {
				info[j].MaxTempC = coupled.BlockMax[j]
			}
			if cfg.Extrinsic != nil {
				pe, err := tech.CharacterizeExtrinsic(cfg.Extrinsic, tBlock, mode.VDD)
				if err != nil {
					return nil, fmt.Errorf("obdrel: mode %q block %q extrinsic: %w", mode.Name, fd.Blocks[j].Name, err)
				}
				extDamage[j] += mode.Fraction / pe.AlphaE
			}
		}
	}
	params := make([]obd.Params, n)
	for j := 0; j < n; j++ {
		params[j] = obd.Params{
			Alpha: 1 / damage[j],
			B:     bWeighted[j] / damage[j],
		}
		info[j].Alpha = params[j].Alpha
		info[j].B = params[j].B
	}

	model, err := cfg.variationModel(fd.W, fd.H)
	if err != nil {
		return nil, err
	}
	keep := cfg.PCAKeepFraction
	if keep == 0 {
		keep = 1
	}
	pca, err := model.ComputePCA(keep)
	if err != nil {
		return nil, err
	}
	char, err := blod.Characterize(fd, model)
	if err != nil {
		return nil, err
	}
	chip, err := core.NewChip(fd, model, char, params)
	if err != nil {
		return nil, err
	}
	if cfg.Extrinsic != nil {
		ext := make([]obd.ExtrinsicParams, n)
		for j := 0; j < n; j++ {
			ext[j] = obd.ExtrinsicParams{
				AlphaE:         1 / extDamage[j],
				BetaE:          cfg.Extrinsic.BetaE,
				DefectFraction: cfg.Extrinsic.DefectFraction,
			}
		}
		if err := chip.SetExtrinsic(ext); err != nil {
			return nil, err
		}
	}
	return &Analyzer{
		cfg:       cfg,
		design:    fd,
		model:     model,
		pca:       pca,
		chip:      chip,
		tech:      tech,
		blockInfo: info,
		field:     bestField,
		engines:   make(map[Method]core.Engine),
	}, nil
}

// Segment is one piecewise interval of a measured telemetry trace:
// the wall-clock duration spent there, the supply voltage, the
// activity scaling (for intervals whose temperature must be solved),
// and an optional measured die temperature.
type Segment struct {
	// Hours is the interval duration; segments are weighted by their
	// share of the trace's total hours.
	Hours float64 `json:"hours"`
	// VDD is the measured supply voltage (V) over the interval.
	VDD float64 `json:"vdd"`
	// ActivityScale multiplies each block's switching activity when
	// the segment's temperature is solved (results clamp to [0, 1]);
	// ignored when TempC is set. Zero means idle, 1 nominal workload.
	ActivityScale float64 `json:"activity_scale"`
	// TempC, when non-zero, is the measured die temperature (°C)
	// applied uniformly to every block — the on-die-sensor reading a
	// fleet telemetry pipeline reports. Zero selects a coupled
	// power/thermal solve at (VDD, ActivityScale) instead; a genuinely
	// measured 0 °C should be nudged by an epsilon.
	TempC float64 `json:"temp_c,omitempty"`
}

// Trace is a piecewise temperature/voltage history — the fleet
// telemetry generalization of a mission profile. Where Mode carries
// time *fractions* at design-time operating points, Trace carries
// measured wall-clock segments; damage accumulates by Miner's rule
// over the segments' hour shares exactly as NewMissionAnalyzer
// combines modes.
type Trace []Segment

// TotalHours returns the trace's total duration.
func (tr Trace) TotalHours() float64 {
	sum := 0.0
	for _, s := range tr {
		sum += s.Hours
	}
	return sum
}

// Validate checks the trace: at least one segment; every segment with
// finite positive hours, finite positive VDD, finite non-negative
// activity scale, and a finite measured temperature within the
// plausible silicon range when set.
func (tr Trace) Validate() error {
	if len(tr) == 0 {
		return errors.New("obdrel: trace needs at least one segment")
	}
	for i, s := range tr {
		switch {
		case !(s.Hours > 0) || math.IsInf(s.Hours, 0):
			return fmt.Errorf("obdrel: trace segment %d hours %v not finite positive", i, s.Hours)
		case !(s.VDD > 0) || math.IsInf(s.VDD, 0):
			return fmt.Errorf("obdrel: trace segment %d VDD %v not finite positive", i, s.VDD)
		case s.ActivityScale < 0 || math.IsNaN(s.ActivityScale) || math.IsInf(s.ActivityScale, 0):
			return fmt.Errorf("obdrel: trace segment %d activity scale %v not finite non-negative", i, s.ActivityScale)
		case math.IsNaN(s.TempC) || math.IsInf(s.TempC, 0):
			return fmt.Errorf("obdrel: trace segment %d temperature %v not finite", i, s.TempC)
		case s.TempC != 0 && (s.TempC < -100 || s.TempC > 250):
			return fmt.Errorf("obdrel: trace segment %d measured temperature %v °C outside [-100, 250]", i, s.TempC)
		}
	}
	if tot := tr.TotalHours(); math.IsInf(tot, 0) {
		return fmt.Errorf("obdrel: trace total hours %v not finite", tot)
	}
	return nil
}

// NewTraceAnalyzer characterizes a design under a measured telemetry
// trace. See NewTraceAnalyzerCtx.
func NewTraceAnalyzer(d *Design, cfg *Config, tr Trace) (*Analyzer, error) {
	return NewTraceAnalyzerCtx(context.Background(), d, cfg, tr)
}

// NewTraceAnalyzerCtx replays a per-unit telemetry trace through the
// reliability model: each segment contributes damage at its own
// (temperature, voltage) operating point for its share of the trace's
// hours, combined by Miner's rule exactly as NewMissionAnalyzer
// combines duty-cycle modes:
//
//	1/α_eff,j = Σ_s (hours_s / Σhours) / α_{j,s}
//
// Measured segments (TempC set) skip the thermal solve — the sensor
// already answered it; solved segments run the coupled power/thermal
// fixed point at the segment's VDD and activity. Voltage-independent
// substrate stages (floorplan, covariance, PCA, BLOD) and each
// distinct (VDD, activity) thermal solve resolve through the shared
// stage cache, so replaying a fleet of traces over one design builds
// the substrate once.
//
// The returned Analyzer answers all the usual queries; reported block
// temperatures are hour-weighted means with the max across segments,
// and the stored temperature field belongs to the highest-power
// solved segment (a uniform 1×1 field at the hottest measured
// temperature when every segment is measured).
func NewTraceAnalyzerCtx(ctx context.Context, d *Design, cfg *Config, tr Trace) (*Analyzer, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, errNilDesign
	}
	cache := sharedStages
	if cfg.DisableStageCache {
		cache = nil
	}
	g := &stageGraph{
		cache: cache,
		d:     d,
		cfg:   cfg,
		tech:  cfg.resolvedTech(),
		pm:    cfg.resolvedPower(),
		ts:    cfg.resolvedThermal(),
		keys:  stageKeys(d.Fingerprint(), d.W, d.H, cfg),
	}
	fd, err := g.floorplan(ctx)
	if err != nil {
		return nil, err
	}
	if err := g.tech.Validate(); err != nil {
		return nil, err
	}
	pm, err := g.powermap(ctx)
	if err != nil {
		return nil, err
	}

	n := len(fd.Blocks)
	info := make([]BlockInfo, n)
	for i := range info {
		info[i] = BlockInfo{
			Name:     fd.Blocks[i].Name,
			Devices:  fd.Blocks[i].Devices,
			MaxTempC: math.Inf(-1),
		}
	}
	damage := make([]float64, n)
	bWeighted := make([]float64, n)
	extDamage := make([]float64, n)
	total := tr.TotalHours()
	var (
		bestField   *thermal.Field
		bestPower   float64
		maxMeasured = math.Inf(-1)
		haveSolved  bool
	)
	for si, seg := range tr {
		frac := seg.Hours / total
		// blockTemp/blockMax/blockPower describe the segment's
		// resolved operating point, from the sensor or the solver.
		var blockMean, blockMax, blockPower []float64
		if seg.TempC != 0 {
			if seg.TempC > maxMeasured {
				maxMeasured = seg.TempC
			}
		} else {
			haveSolved = true
			coupled, err := g.traceSegThermal(ctx, fd, pm, seg)
			if err != nil {
				return nil, fmt.Errorf("obdrel: trace segment %d thermal analysis: %w", si, err)
			}
			if tot := power.Total(coupled.Powers); tot > bestPower || bestField == nil {
				bestPower = tot
				bestField = coupled.Field
			}
			blockMean, blockMax, blockPower = coupled.BlockMean, coupled.BlockMax, coupled.Powers
		}
		for j := 0; j < n; j++ {
			tMean, tMax, pW := seg.TempC, seg.TempC, 0.0
			if blockMean != nil {
				tMean, tMax, pW = blockMean[j], blockMax[j], blockPower[j]
			}
			tBlock := tMean
			if cfg.UseBlockMaxTemp {
				tBlock = tMax
			}
			p, err := g.tech.Characterize(tBlock, seg.VDD)
			if err != nil {
				return nil, fmt.Errorf("obdrel: trace segment %d block %q: %w", si, fd.Blocks[j].Name, err)
			}
			w := frac / p.Alpha
			damage[j] += w
			bWeighted[j] += w * p.B
			info[j].MeanTempC += frac * tMean
			info[j].PowerW += frac * pW
			if tMax > info[j].MaxTempC {
				info[j].MaxTempC = tMax
			}
			if cfg.Extrinsic != nil {
				pe, err := g.tech.CharacterizeExtrinsic(cfg.Extrinsic, tBlock, seg.VDD)
				if err != nil {
					return nil, fmt.Errorf("obdrel: trace segment %d block %q extrinsic: %w", si, fd.Blocks[j].Name, err)
				}
				extDamage[j] += frac / pe.AlphaE
			}
		}
	}
	if !haveSolved {
		// Every segment came with a sensor reading: there is no solved
		// field to store, so report a uniform die at the hottest
		// measured temperature.
		bestField = &thermal.Field{Nx: 1, Ny: 1, W: fd.W, H: fd.H, Temps: []float64{maxMeasured}}
	}

	params := make([]obd.Params, n)
	for j := 0; j < n; j++ {
		params[j] = obd.Params{
			Alpha: 1 / damage[j],
			B:     bWeighted[j] / damage[j],
		}
		info[j].Alpha = params[j].Alpha
		info[j].B = params[j].B
	}

	model, err := g.covariance(ctx)
	if err != nil {
		return nil, err
	}
	pca, err := g.pca(ctx, model)
	if err != nil {
		return nil, err
	}
	char, err := g.blod(ctx, fd, model)
	if err != nil {
		return nil, err
	}
	chip, err := core.NewChip(fd, model, char, params)
	if err != nil {
		return nil, err
	}
	if cfg.Extrinsic != nil {
		ext := make([]obd.ExtrinsicParams, n)
		for j := 0; j < n; j++ {
			ext[j] = obd.ExtrinsicParams{
				AlphaE:         1 / extDamage[j],
				BetaE:          cfg.Extrinsic.BetaE,
				DefectFraction: cfg.Extrinsic.DefectFraction,
			}
		}
		if err := chip.SetExtrinsic(ext); err != nil {
			return nil, err
		}
	}
	return &Analyzer{
		cfg:       cfg,
		design:    fd,
		model:     model,
		pca:       pca,
		chip:      chip,
		tech:      g.tech,
		blockInfo: info,
		field:     bestField,
		// The trace-specific Weibull parameters make the chip identity
		// trace-dependent; composing the trace fingerprint in keeps
		// hybrid table spills (keyed by chipKey) distinct per trace.
		chipKey: fp16(StageChip, g.keys[StageBLOD],
			fp16("trace-weibull", d.Fingerprint(), cfg.segPower(), cfg.segWeibull(), tr.Fingerprint())),
		engines: make(map[Method]core.Engine),
	}, nil
}

// traceSegThermal resolves a solved trace segment's coupled
// power/thermal fixed point through the stage cache: the key is the
// thermal-stage identity evaluated at the segment's (VDD, activity),
// so repeating segments — across a trace or across a fleet of traces
// on one design — solve once.
func (g *stageGraph) traceSegThermal(ctx context.Context, fd *floorplan.Design, pm *power.Model, seg Segment) (*thermal.CoupledResult, error) {
	key := fp16(StageThermal, g.keys[StageFloorplan],
		fmt.Sprintf("traceseg|a=%g", seg.ActivityScale),
		g.cfg.segPower(), g.cfg.segThermalAt(seg.VDD))
	return stageGet(ctx, g.cache, StageThermal, key,
		func(bctx context.Context) (*thermal.CoupledResult, error) {
			scaled := *fd
			scaled.Blocks = append([]floorplan.Block(nil), fd.Blocks...)
			for i := range scaled.Blocks {
				a := scaled.Blocks[i].Activity * seg.ActivityScale
				if a > 1 {
					a = 1
				}
				scaled.Blocks[i].Activity = a
			}
			ts := g.ts
			if ts.Workers == 0 && g.cfg.Workers != 0 {
				tsCopy := *ts
				tsCopy.Workers = g.cfg.Workers
				ts = &tsCopy
			}
			return ts.SolveCoupledCtx(bctx, &scaled, func(temps []float64) ([]float64, error) {
				return pm.DesignPowers(&scaled, seg.VDD, temps)
			}, 0, 0)
		})
}

func validateModes(modes []Mode) error {
	if len(modes) == 0 {
		return errors.New("obdrel: mission profile needs at least one mode")
	}
	sum := 0.0
	for _, m := range modes {
		switch {
		case !(m.VDD > 0):
			return fmt.Errorf("obdrel: mode %q has non-positive VDD", m.Name)
		case m.ActivityScale < 0:
			return fmt.Errorf("obdrel: mode %q has negative activity scale", m.Name)
		case !(m.Fraction > 0) || m.Fraction > 1:
			return fmt.Errorf("obdrel: mode %q fraction %v outside (0,1]", m.Name, m.Fraction)
		}
		sum += m.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("obdrel: mode fractions sum to %v, want 1", sum)
	}
	return nil
}
