package obdrel

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/blod"
	"obdrel/internal/core"
	"obdrel/internal/floorplan"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// Mode is one operating mode of a mission profile: a supply voltage,
// an activity scaling applied to every block, and the fraction of
// operating time spent in the mode.
type Mode struct {
	Name string
	// VDD is the mode's supply voltage (V).
	VDD float64
	// ActivityScale multiplies each block's switching activity
	// (results clamp to [0, 1]); 1 is the design's nominal workload.
	ActivityScale float64
	// Fraction is the share of operating time, in (0, 1]; the modes'
	// fractions must sum to 1.
	Fraction float64
}

// NewMissionAnalyzer characterizes a design under a duty-cycled
// mission profile instead of a single worst-case operating point.
// Each mode gets its own power/thermal solve and block-level Weibull
// characterization; the per-mode characteristic lives combine by
// linear damage accumulation (Miner's rule):
//
//	1/α_eff,j = Σ_m fraction_m / α_{j,m}
//
// so a block ages at each mode's rate for that mode's share of time.
// The per-block slope b is damage-weighted across modes (its spread
// over realistic mode temperatures is a few percent, so the
// approximation is mild; the dominant mode dominates the weight). The
// same combination applies to the extrinsic population when
// configured.
//
// The returned Analyzer answers all the usual queries; reported block
// temperatures are the fraction-weighted means with the max taken
// across modes, and the stored temperature field belongs to the
// highest-power mode.
func NewMissionAnalyzer(d *Design, cfg *Config, modes []Mode) (*Analyzer, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateModes(modes); err != nil {
		return nil, err
	}
	fd, err := d.internal()
	if err != nil {
		return nil, err
	}
	tech := cfg.Tech
	if tech == nil {
		tech = obd.DefaultTech()
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	pm := cfg.Power
	if pm == nil {
		pm = power.Default()
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	ts := cfg.Thermal
	if ts == nil {
		ts = thermal.DefaultSolver()
	}

	n := len(fd.Blocks)
	info := make([]BlockInfo, n)
	for i := range info {
		info[i] = BlockInfo{
			Name:     fd.Blocks[i].Name,
			Devices:  fd.Blocks[i].Devices,
			MaxTempC: math.Inf(-1),
		}
	}
	// Per-block accumulators: damage rate Σ f/α, damage-weighted b,
	// extrinsic damage rate.
	damage := make([]float64, n)
	bWeighted := make([]float64, n)
	extDamage := make([]float64, n)
	var (
		bestField *thermal.Field
		bestPower float64
	)
	for _, mode := range modes {
		scaled := *fd
		scaled.Blocks = append([]floorplan.Block(nil), fd.Blocks...)
		for i := range scaled.Blocks {
			a := scaled.Blocks[i].Activity * mode.ActivityScale
			if a > 1 {
				a = 1
			}
			scaled.Blocks[i].Activity = a
		}
		coupled, err := ts.SolveCoupled(&scaled, func(temps []float64) ([]float64, error) {
			return pm.DesignPowers(&scaled, mode.VDD, temps)
		}, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("obdrel: mode %q thermal analysis: %w", mode.Name, err)
		}
		if tot := power.Total(coupled.Powers); tot > bestPower {
			bestPower = tot
			bestField = coupled.Field
		}
		for j := 0; j < n; j++ {
			tBlock := coupled.BlockMean[j]
			if cfg.UseBlockMaxTemp {
				tBlock = coupled.BlockMax[j]
			}
			p, err := tech.Characterize(tBlock, mode.VDD)
			if err != nil {
				return nil, fmt.Errorf("obdrel: mode %q block %q: %w", mode.Name, fd.Blocks[j].Name, err)
			}
			w := mode.Fraction / p.Alpha
			damage[j] += w
			bWeighted[j] += w * p.B
			info[j].MeanTempC += mode.Fraction * coupled.BlockMean[j]
			info[j].PowerW += mode.Fraction * coupled.Powers[j]
			if coupled.BlockMax[j] > info[j].MaxTempC {
				info[j].MaxTempC = coupled.BlockMax[j]
			}
			if cfg.Extrinsic != nil {
				pe, err := tech.CharacterizeExtrinsic(cfg.Extrinsic, tBlock, mode.VDD)
				if err != nil {
					return nil, fmt.Errorf("obdrel: mode %q block %q extrinsic: %w", mode.Name, fd.Blocks[j].Name, err)
				}
				extDamage[j] += mode.Fraction / pe.AlphaE
			}
		}
	}
	params := make([]obd.Params, n)
	for j := 0; j < n; j++ {
		params[j] = obd.Params{
			Alpha: 1 / damage[j],
			B:     bWeighted[j] / damage[j],
		}
		info[j].Alpha = params[j].Alpha
		info[j].B = params[j].B
	}

	model, err := cfg.variationModel(fd.W, fd.H)
	if err != nil {
		return nil, err
	}
	keep := cfg.PCAKeepFraction
	if keep == 0 {
		keep = 1
	}
	pca, err := model.ComputePCA(keep)
	if err != nil {
		return nil, err
	}
	char, err := blod.Characterize(fd, model)
	if err != nil {
		return nil, err
	}
	chip, err := core.NewChip(fd, model, char, params)
	if err != nil {
		return nil, err
	}
	if cfg.Extrinsic != nil {
		ext := make([]obd.ExtrinsicParams, n)
		for j := 0; j < n; j++ {
			ext[j] = obd.ExtrinsicParams{
				AlphaE:         1 / extDamage[j],
				BetaE:          cfg.Extrinsic.BetaE,
				DefectFraction: cfg.Extrinsic.DefectFraction,
			}
		}
		if err := chip.SetExtrinsic(ext); err != nil {
			return nil, err
		}
	}
	return &Analyzer{
		cfg:       cfg,
		design:    fd,
		model:     model,
		pca:       pca,
		chip:      chip,
		tech:      tech,
		blockInfo: info,
		field:     bestField,
		engines:   make(map[Method]core.Engine),
	}, nil
}

func validateModes(modes []Mode) error {
	if len(modes) == 0 {
		return errors.New("obdrel: mission profile needs at least one mode")
	}
	sum := 0.0
	for _, m := range modes {
		switch {
		case !(m.VDD > 0):
			return fmt.Errorf("obdrel: mode %q has non-positive VDD", m.Name)
		case m.ActivityScale < 0:
			return fmt.Errorf("obdrel: mode %q has negative activity scale", m.Name)
		case !(m.Fraction > 0) || m.Fraction > 1:
			return fmt.Errorf("obdrel: mode %q fraction %v outside (0,1]", m.Name, m.Fraction)
		}
		sum += m.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("obdrel: mode fractions sum to %v, want 1", sum)
	}
	return nil
}
