package obdrel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"obdrel/internal/floorplan"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// This file defines the canonical identities of the analysis: one
// textual segment per stage input, hashed into per-stage fingerprints
// (see stages.go) and composed into the whole-config fingerprint.
// Because Config.Fingerprint is built FROM the stage segments, a new
// knob added to a stage segment automatically reaches the analyzer
// key — the two can not drift apart.
//
// Canonicalization rules shared by every segment:
//
//   - nil Tech/Power/Thermal and a zero PCAKeepFraction resolve to
//     their defaults before hashing, so an explicit DefaultConfig and
//     a zero-value-with-defaults config collide (as they should);
//   - performance-only knobs (Workers, DisablePCACache,
//     DisableStageCache, TableDir) are excluded — they select
//     execution strategy, not the model. Workers ≥ 2 and 0 are
//     bit-identical by construction; Workers:1 differs only within the
//     documented serial/parallel tolerance, which caching layers
//     accept; TableDir only changes where hybrid tables are stored.

// fp16 hashes newline-joined canonical segments into the 32-hex-char
// fingerprint format used by every cache key in the system.
func fp16(segments ...string) string {
	h := sha256.New()
	for _, s := range segments {
		io.WriteString(h, s)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ValidFingerprint reports whether s has the canonical fp16 shape —
// exactly 32 lowercase hex characters. The stage fingerprints double
// as wire-level content addresses (artifact file names, the
// /v1/artifact/{stage}/{key} endpoint), so inputs from the network
// and from directory listings are gated through this before use.
func ValidFingerprint(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// resolvedTech returns the configured or default technology.
func (c *Config) resolvedTech() *obd.Tech {
	if c.Tech != nil {
		return c.Tech
	}
	return obd.DefaultTech()
}

// resolvedPower returns the configured or default power model.
func (c *Config) resolvedPower() *power.Model {
	if c.Power != nil {
		return c.Power
	}
	return power.Default()
}

// resolvedThermal returns the configured or default thermal solver.
func (c *Config) resolvedThermal() *thermal.Solver {
	if c.Thermal != nil {
		return c.Thermal
	}
	return thermal.DefaultSolver()
}

// resolvedKeep returns the PCA keep fraction with 0 meaning 1.
func (c *Config) resolvedKeep() float64 {
	if c.PCAKeepFraction == 0 {
		return 1
	}
	return c.PCAKeepFraction
}

// resolvedQuadTree returns the quad-tree parameters with defaults
// applied (3 levels, decay 0.5); zeros when the structure is the
// exponential-decay grid.
func (c *Config) resolvedQuadTree() (levels int, decay float64) {
	if !c.QuadTree {
		return 0, 0
	}
	levels, decay = c.QuadTreeLevels, c.QuadTreeDecay
	if levels == 0 {
		levels = 3
	}
	if decay == 0 {
		decay = 0.5
	}
	return levels, decay
}

// thermalVDD returns the voltage the power/thermal fixed point runs
// at: PinThermalVDD when set, else the operating VDD.
func (c *Config) thermalVDD() float64 {
	if c.PinThermalVDD > 0 {
		return c.PinThermalVDD
	}
	return c.VDD
}

// segPower is the power-map stage input: the resolved power model and
// nothing else. The dynamic-density map iterates in a fixed class
// order so the segment does not depend on Go's map ordering.
func (c *Config) segPower() string {
	pm := c.resolvedPower()
	var b strings.Builder
	fmt.Fprintf(&b, "power|vn=%g|lk=%g,%g,%g|", pm.VNom, pm.LeakDensity0, pm.LeakTCoeff, pm.TRef)
	classes := make([]int, 0, len(pm.DynDensity))
	for cl := range pm.DynDensity {
		classes = append(classes, int(cl))
	}
	sort.Ints(classes)
	for _, cl := range classes {
		fmt.Fprintf(&b, "%d=%g;", cl, pm.DynDensity[floorplan.Class(cl)])
	}
	return b.String()
}

// segThermal is the thermal-solve stage input beyond the power map:
// the resolved solver parameters and the voltage the fixed point runs
// at. The field genuinely moves with VDD (dynamic power ∝ V², leakage
// ∝ V), which is why the thermal stage — unlike covariance/PCA/BLOD —
// is keyed by voltage; PinThermalVDD collapses that key across a
// voltage sweep.
func (c *Config) segThermal() string {
	return c.segThermalAt(c.thermalVDD())
}

// segThermalAt is segThermal evaluated at an explicit voltage — the
// per-segment key for telemetry-trace solves, where each segment's
// measured VDD (not the config's operating point) drives the fixed
// point.
func (c *Config) segThermalAt(v float64) string {
	ts := c.resolvedThermal()
	return fmt.Sprintf("thermal|%dx%d|m=%s|gv=%g|gl=%g|ta=%g|om=%g|tol=%g|it=%d|v=%g",
		ts.Nx, ts.Ny, ts.ResolvedMethod(), ts.GVertical, ts.GLateral, ts.TAmbient, ts.Omega, ts.Tol, ts.MaxIter,
		v)
}

// segCovariance is the variation-model stage input: die geometry plus
// every knob of Eq. 1's decomposition — nominal thickness, the σ
// budget, the correlation structure, and the wafer-level systematic
// pattern.
func (c *Config) segCovariance(dieW, dieH float64) string {
	tech := c.resolvedTech()
	qtLevels, qtDecay := c.resolvedQuadTree()
	wafer := "nil"
	if p := c.WaferPattern; p != nil {
		wafer = fmt.Sprintf("%g|%g|%g|%g|%g|%g", p.DieX, p.DieY, p.DieSpan, p.Bowl, p.SlantX, p.SlantY)
	}
	return fmt.Sprintf("cov|die=%gx%g|u0=%g|sr=%g|fg=%g|fs=%g|fi=%g|rho=%g|grid=%dx%d|qt=%t,%d,%g|wafer=%s",
		dieW, dieH, tech.U0, c.SigmaRatio, c.FracGlobal, c.FracSpatial, c.FracIndependent,
		c.RhoDist, c.GridNx, c.GridNy, c.QuadTree, qtLevels, qtDecay, wafer)
}

// segPCA is the eigendecomposition stage input. It deliberately
// excludes FracIndependent (σ_ε never enters the correlated-component
// covariance) and the wafer pattern (a deterministic mean shift), so
// sweeps over those share one PCA — mirroring grid.PCACache's key.
func (c *Config) segPCA(dieW, dieH float64) string {
	tech := c.resolvedTech()
	qtLevels, qtDecay := c.resolvedQuadTree()
	return fmt.Sprintf("pca|die=%gx%g|u0=%g|sr=%g|fg=%g|fs=%g|rho=%g|grid=%dx%d|qt=%t,%d,%g|keep=%g",
		dieW, dieH, tech.U0, c.SigmaRatio, c.FracGlobal, c.FracSpatial,
		c.RhoDist, c.GridNx, c.GridNy, c.QuadTree, qtLevels, qtDecay, c.resolvedKeep())
}

// segWeibull is the per-block device-parameter stage input beyond the
// thermal field: the full technology (α(T,V)/b(T,V) calibration), the
// operating voltage, the mean-vs-max temperature choice, and the
// extrinsic population.
func (c *Config) segWeibull() string {
	tech := c.resolvedTech()
	ext := "nil"
	if e := c.Extrinsic; e != nil {
		ext = fmt.Sprintf("%g|%g|%g|%g|%g", e.DefectFraction, e.Alpha0E, e.BetaE, e.EaEV, e.NV)
	}
	return fmt.Sprintf("weib|tech=%g|%g|%g|%g|%g|%g|%g|%g|v=%g|maxT=%t|ext=%s",
		tech.U0, tech.Alpha0, tech.TRefC, tech.VRef, tech.EaEV, tech.NV, tech.B0, tech.CB,
		c.VDD, c.UseBlockMaxTemp, ext)
}

// segEngines covers the knobs that configure query engines but no
// substrate stage: they shape how questions are answered, not what
// the chip is, so they reach only the whole-analyzer fingerprint.
func (c *Config) segEngines() string {
	return fmt.Sprintf("eng|l0=%d|stmc=%d,%d|mc=%d|hyb=%dx%d|guard=%g|seed=%d",
		c.L0, c.StMCSamples, c.StMCBins, c.MCSamples,
		c.HybridNL, c.HybridNB, c.GuardSigmas, c.Seed)
}

// Fingerprint returns a stable, canonical identity for the
// configuration: a hex digest over every model parameter that affects
// analysis results, composed from the per-stage canonical segments
// (die geometry, the only design-derived stage input, is contributed
// by the Design half of CacheKey). Configurations that resolve to the
// same analyzer behaviour share a fingerprint.
//
// The fingerprint is the cache key half used by serving-layer
// analyzer registries (see internal/server); CacheKey combines it
// with a Design fingerprint, and StageFingerprints exposes the
// per-stage keys underneath it.
func (c *Config) Fingerprint() string {
	return fp16(
		c.segPower(),
		c.segThermal(),
		c.segCovariance(0, 0),
		c.segPCA(0, 0),
		c.segWeibull(),
		c.segEngines(),
	)
}

// Fingerprint returns a stable identity for the design: a hex digest
// of its name, die geometry, and every block's rectangle, device
// count, class, and activity. Two designs with the same name but
// different contents get different fingerprints.
func (d *Design) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "design|%s|%g|%g|%d\n", d.Name, d.W, d.H, len(d.Blocks))
	for i := range d.Blocks {
		b := &d.Blocks[i]
		fmt.Fprintf(h, "blk|%s|%g|%g|%g|%g|%d|%d|%g\n",
			b.Name, b.X, b.Y, b.W, b.H, b.Devices, int(b.Class), b.Activity)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// CacheKey returns the canonical cache identity of a (design, config)
// pair — the key under which serving layers memoize Analyzers. A nil
// config selects DefaultConfig, matching NewAnalyzer.
func CacheKey(d *Design, cfg *Config) string {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	return d.Fingerprint() + ":" + cfg.Fingerprint()
}

// Fingerprint returns a stable, canonical identity for a telemetry
// trace: the segment count, segment order, and every field of every
// segment. Damage accumulation is a weighted sum over segments, so
// order would not change the result for identical segment sets — but
// two traces with reordered segments are still different telemetry,
// and collapsing them would hide that from caches and audits; the
// fingerprint therefore keeps order significant.
func (tr Trace) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace|%d", len(tr))
	for _, s := range tr {
		fmt.Fprintf(&b, "|h=%g,v=%g,a=%g,t=%g", s.Hours, s.VDD, s.ActivityScale, s.TempC)
	}
	return fp16(b.String())
}

// TraceCacheKey returns the canonical cache identity of a telemetry
// replay: the (design, config) CacheKey extended with the trace
// fingerprint. Serving layers memoize trace analyzers under it; the
// batch planner uses it as the grouping key for trace query items.
func TraceCacheKey(d *Design, cfg *Config, tr Trace) string {
	return CacheKey(d, cfg) + ":" + tr.Fingerprint()
}
