package obdrel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"obdrel/internal/floorplan"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// Fingerprint returns a stable, canonical identity for the
// configuration: a hex digest over every model parameter that affects
// analysis results. Configurations that resolve to the same analyzer
// behaviour share a fingerprint:
//
//   - nil Tech/Power/Thermal and a zero PCAKeepFraction are resolved
//     to their defaults before hashing, so an explicit DefaultConfig
//     and a zero-value-with-defaults config collide (as they should);
//   - performance-only knobs (Workers, DisablePCACache) are excluded
//     — they select execution strategy, not the model. Workers ≥ 2
//     and 0 are bit-identical by construction; Workers:1 differs only
//     within the documented serial/parallel tolerance, which caching
//     layers accept.
//
// The fingerprint is the cache key half used by serving-layer
// analyzer registries (see internal/server); CacheKey combines it
// with a Design fingerprint.
func (c *Config) Fingerprint() string {
	h := sha256.New()
	c.writeCanonical(h)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (c *Config) writeCanonical(w io.Writer) {
	tech := c.Tech
	if tech == nil {
		tech = obd.DefaultTech()
	}
	pm := c.Power
	if pm == nil {
		pm = power.Default()
	}
	ts := c.Thermal
	if ts == nil {
		ts = thermal.DefaultSolver()
	}
	keep := c.PCAKeepFraction
	if keep == 0 {
		keep = 1
	}
	qtLevels, qtDecay := 0, 0.0
	if c.QuadTree {
		qtLevels, qtDecay = c.QuadTreeLevels, c.QuadTreeDecay
		if qtLevels == 0 {
			qtLevels = 3
		}
		if qtDecay == 0 {
			qtDecay = 0.5
		}
	}
	fmt.Fprintf(w, "cfg|v=%g|sr=%g|fg=%g|fs=%g|fi=%g|rho=%g|grid=%dx%d|qt=%t,%d,%g|keep=%g\n",
		c.VDD, c.SigmaRatio, c.FracGlobal, c.FracSpatial, c.FracIndependent,
		c.RhoDist, c.GridNx, c.GridNy, c.QuadTree, qtLevels, qtDecay, keep)
	fmt.Fprintf(w, "eng|maxT=%t|l0=%d|stmc=%d,%d|mc=%d|hyb=%dx%d|guard=%g|seed=%d\n",
		c.UseBlockMaxTemp, c.L0, c.StMCSamples, c.StMCBins, c.MCSamples,
		c.HybridNL, c.HybridNB, c.GuardSigmas, c.Seed)
	fmt.Fprintf(w, "tech|%g|%g|%g|%g|%g|%g|%g|%g\n",
		tech.U0, tech.Alpha0, tech.TRefC, tech.VRef, tech.EaEV, tech.NV, tech.B0, tech.CB)
	if e := c.Extrinsic; e != nil {
		fmt.Fprintf(w, "ext|%g|%g|%g|%g|%g\n",
			e.DefectFraction, e.Alpha0E, e.BetaE, e.EaEV, e.NV)
	} else {
		fmt.Fprintf(w, "ext|nil\n")
	}
	if p := c.WaferPattern; p != nil {
		fmt.Fprintf(w, "wafer|%g|%g|%g|%g|%g|%g\n",
			p.DieX, p.DieY, p.DieSpan, p.Bowl, p.SlantX, p.SlantY)
	} else {
		fmt.Fprintf(w, "wafer|nil\n")
	}
	// The dynamic-density map iterates in a fixed class order so the
	// digest does not depend on Go's map ordering.
	classes := make([]int, 0, len(pm.DynDensity))
	for cl := range pm.DynDensity {
		classes = append(classes, int(cl))
	}
	sort.Ints(classes)
	fmt.Fprintf(w, "power|vn=%g|lk=%g,%g,%g|", pm.VNom, pm.LeakDensity0, pm.LeakTCoeff, pm.TRef)
	for _, cl := range classes {
		fmt.Fprintf(w, "%d=%g;", cl, pm.DynDensity[floorplan.Class(cl)])
	}
	fmt.Fprintf(w, "\nthermal|%dx%d|gv=%g|gl=%g|ta=%g|om=%g|tol=%g|it=%d\n",
		ts.Nx, ts.Ny, ts.GVertical, ts.GLateral, ts.TAmbient, ts.Omega, ts.Tol, ts.MaxIter)
}

// Fingerprint returns a stable identity for the design: a hex digest
// of its name, die geometry, and every block's rectangle, device
// count, class, and activity. Two designs with the same name but
// different contents get different fingerprints.
func (d *Design) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "design|%s|%g|%g|%d\n", d.Name, d.W, d.H, len(d.Blocks))
	for i := range d.Blocks {
		b := &d.Blocks[i]
		fmt.Fprintf(h, "blk|%s|%g|%g|%g|%g|%d|%d|%g\n",
			b.Name, b.X, b.Y, b.W, b.H, b.Devices, int(b.Class), b.Activity)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// CacheKey returns the canonical cache identity of a (design, config)
// pair — the key under which serving layers memoize Analyzers. A nil
// config selects DefaultConfig, matching NewAnalyzer.
func CacheKey(d *Design, cfg *Config) string {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	return d.Fingerprint() + ":" + cfg.Fingerprint()
}
