package obdrel_test

import (
	"testing"

	"obdrel"
)

func TestMaxVDDBracketsRequirement(t *testing.T) {
	cfg := fastConfig()
	const (
		ppm    = 10.0
		target = 5 * 8760.0
	)
	v, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodStFast, ppm, target, 1.0, 1.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(v > 1.0 && v < 1.5) {
		t.Fatalf("MaxVDD = %v, expected interior solution", v)
	}
	// The returned voltage meets the requirement; one step above
	// does not.
	check := func(vdd float64) float64 {
		probe := *cfg
		probe.VDD = vdd
		an, err := obdrel.NewAnalyzer(obdrel.C1(), &probe)
		if err != nil {
			t.Fatal(err)
		}
		life, err := an.LifetimePPM(ppm, obdrel.MethodStFast)
		if err != nil {
			t.Fatal(err)
		}
		return life
	}
	if life := check(v); life < target {
		t.Errorf("at MaxVDD %v the lifetime %v misses the target %v", v, life, target)
	}
	if life := check(v + 0.02); life >= target {
		t.Errorf("2 steps above MaxVDD still meets the target (%v h)", life)
	}
}

func TestMaxVDDGuardBandCostsHeadroom(t *testing.T) {
	// The paper's point: the pessimistic analysis forces a lower VDD.
	cfg := fastConfig()
	const (
		ppm    = 10.0
		target = 5 * 8760.0
	)
	vStat, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodStFast, ppm, target, 0.9, 1.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	vGuard, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodGuard, ppm, target, 0.9, 1.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(vStat > vGuard) {
		t.Errorf("statistical max VDD %v not above guard-band %v", vStat, vGuard)
	}
}

func TestMaxVDDEdges(t *testing.T) {
	cfg := fastConfig()
	// Requirement trivially met everywhere → vHi.
	v, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodStFast, 10, 1, 1.0, 1.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.1 {
		t.Errorf("trivial requirement: %v, want vHi", v)
	}
	// Impossible requirement → error.
	if _, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodStFast, 10, 1e30, 1.0, 1.1, 0.01); err == nil {
		t.Error("impossible requirement should error")
	}
	// Bad bracket → error.
	if _, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodStFast, 10, 1e4, 1.2, 1.0, 0.01); err == nil {
		t.Error("inverted bracket should error")
	}
	if _, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodStFast, 0, 1e4, 1.0, 1.2, 0.01); err == nil {
		t.Error("zero ppm should error")
	}
}
