package obdrel_test

import (
	"math"
	"testing"

	"obdrel"
)

// fastConfig returns a configuration light enough for unit tests:
// a coarser correlation grid and fewer Monte-Carlo samples.
func fastConfig() *obdrel.Config {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 8, 8
	cfg.MCSamples = 600
	cfg.StMCSamples = 3000
	return cfg
}

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDefaultConfigValid(t *testing.T) {
	if err := obdrel.DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*obdrel.Config){
		func(c *obdrel.Config) { c.VDD = 0 },
		func(c *obdrel.Config) { c.SigmaRatio = 0 },
		func(c *obdrel.Config) { c.SigmaRatio = 1.5 },
		func(c *obdrel.Config) { c.GridNx = 0 },
		func(c *obdrel.Config) { c.RhoDist = 0 },
		func(c *obdrel.Config) { c.GuardSigmas = -1 },
	}
	for i, mut := range mutations {
		cfg := obdrel.DefaultConfig()
		mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestBenchmarkRoster(t *testing.T) {
	bs := obdrel.Benchmarks()
	if len(bs) != 6 {
		t.Fatalf("got %d benchmarks", len(bs))
	}
	wantDevices := []int{50_000, 80_000, 100_000, 200_000, 500_000, 840_000}
	for i, d := range bs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if got := d.TotalDevices(); got != wantDevices[i] {
			t.Errorf("%s: %d devices, want %d", d.Name, got, wantDevices[i])
		}
	}
}

func TestDesignConstructors(t *testing.T) {
	if _, err := obdrel.Synthetic("s", 6, 10000, 3); err != nil {
		t.Error(err)
	}
	if _, err := obdrel.Synthetic("s", 0, 10000, 3); err == nil {
		t.Error("invalid synthetic should error")
	}
	mc, err := obdrel.ManyCore(3, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Blocks) != 18 {
		t.Errorf("many-core blocks = %d", len(mc.Blocks))
	}
	if _, err := obdrel.ManyCore(0, 600); err == nil {
		t.Error("invalid many-core should error")
	}
}

func TestNewAnalyzerValidation(t *testing.T) {
	if _, err := obdrel.NewAnalyzer(nil, nil); err == nil {
		t.Error("nil design should error")
	}
	bad := obdrel.DefaultConfig()
	bad.VDD = -1
	if _, err := obdrel.NewAnalyzer(obdrel.C1(), bad); err == nil {
		t.Error("bad config should error")
	}
	overlapping := &obdrel.Design{
		Name: "bad", W: 1, H: 1,
		Blocks: []obdrel.Block{
			{Name: "a", X: 0, Y: 0, W: 0.8, H: 1, Devices: 10, Activity: 0.5},
			{Name: "b", X: 0.5, Y: 0, W: 0.5, H: 1, Devices: 10, Activity: 0.5},
		},
	}
	if _, err := obdrel.NewAnalyzer(overlapping, nil); err == nil {
		t.Error("overlapping design should error")
	}
}

func TestAnalyzerBlocksReport(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	blocks := an.Blocks()
	if len(blocks) != 8 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for _, b := range blocks {
		if b.MaxTempC < b.MeanTempC {
			t.Errorf("block %s: max temp below mean", b.Name)
		}
		if !(b.PowerW > 0) || !(b.Alpha > 0) || !(b.B > 0) || b.Devices <= 0 {
			t.Errorf("block %s: implausible report %+v", b.Name, b)
		}
	}
	// Hotter blocks must have smaller characteristic life.
	for i := range blocks {
		for j := range blocks {
			if blocks[i].MaxTempC > blocks[j].MaxTempC+0.5 && blocks[i].Alpha >= blocks[j].Alpha {
				t.Errorf("block %s hotter than %s but α not smaller", blocks[i].Name, blocks[j].Name)
			}
		}
	}
}

func TestAnalyzerTemperatureField(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, temps := an.TemperatureField()
	if nx*ny != len(temps) {
		t.Fatalf("field geometry %d×%d vs %d cells", nx, ny, len(temps))
	}
	min, mean, max := an.TempSpread()
	if !(min <= mean && mean <= max) {
		t.Errorf("TempSpread ordering: %v %v %v", min, mean, max)
	}
	if max-min < 5 || max-min > 60 {
		t.Errorf("temperature spread %v K outside plausible band", max-min)
	}
}

func TestMethodStrings(t *testing.T) {
	want := map[obdrel.Method]string{
		obdrel.MethodStFast:      "st_fast",
		obdrel.MethodStMC:        "st_MC",
		obdrel.MethodHybrid:      "hybrid",
		obdrel.MethodGuard:       "guard",
		obdrel.MethodMC:          "MC",
		obdrel.MethodTempUnaware: "temp_unaware",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if got := obdrel.Method(99).String(); got != "method(99)" {
		t.Errorf("unknown method = %q", got)
	}
	if len(obdrel.Methods()) != 6 {
		t.Error("Methods() should list all six")
	}
}

func TestReliabilityAcrossMethods(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tRef, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range obdrel.Methods() {
		r, err := an.Reliability(tRef, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r < 0 || r > 1 {
			t.Errorf("%v: R = %v", m, r)
		}
		p, err := an.FailureProb(tRef, m)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r+p, 1, 1e-12) {
			t.Errorf("%v: R + P = %v", m, r+p)
		}
	}
}

func TestHeadlineAccuracyAndOrdering(t *testing.T) {
	// The paper's Table III / Fig. 10 claims, on C1 at test scale:
	// st_fast, st_MC and hybrid land within a few percent of MC;
	// guard and temp-unaware are pessimistic in the right order.
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := an.CompareMethods(10, obdrel.Methods())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[obdrel.Method]obdrel.Comparison{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	for _, m := range []obdrel.Method{obdrel.MethodStFast, obdrel.MethodStMC, obdrel.MethodHybrid} {
		if e := math.Abs(byName[m].ErrVsMCPct); e > 6 {
			t.Errorf("%v error vs MC = %.2f%%, want ≤ 6%%", m, e)
		}
	}
	if byName[obdrel.MethodMC].ErrVsMCPct != 0 {
		t.Error("MC row should have zero self-error")
	}
	guard := byName[obdrel.MethodGuard]
	unaware := byName[obdrel.MethodTempUnaware]
	fast := byName[obdrel.MethodStFast]
	if !(guard.LifetimeH < unaware.LifetimeH && unaware.LifetimeH < fast.LifetimeH) {
		t.Errorf("pessimism ordering violated: guard %v, unaware %v, st_fast %v",
			guard.LifetimeH, unaware.LifetimeH, fast.LifetimeH)
	}
	if guard.ErrVsMCPct > -25 {
		t.Errorf("guard error %.1f%%, want strongly pessimistic", guard.ErrVsMCPct)
	}
}

func TestCompareMethodsValidation(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.CompareMethods(10, nil); err == nil {
		t.Error("empty method list should error")
	}
}

func TestReliabilityCurveMonotone(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t10, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	times, pf, err := an.ReliabilityCurve(t10/100, t10*100, 40, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 40 || len(pf) != 40 {
		t.Fatalf("curve lengths %d, %d", len(times), len(pf))
	}
	for i := 1; i < len(pf); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("curve times not increasing")
		}
		if pf[i] < pf[i-1]-1e-12 {
			t.Fatal("failure curve not monotone")
		}
	}
	if _, _, err := an.ReliabilityCurve(10, 1, 40, obdrel.MethodStFast); err == nil {
		t.Error("inverted range should error")
	}
}

func TestSampleFailureTimes(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	times, err := an.SampleFailureTimes(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 500 {
		t.Fatalf("got %d failure times", len(times))
	}
	for _, ft := range times {
		if !(ft > 0) {
			t.Fatal("non-positive failure time")
		}
	}
}

func TestLifetimeAtFailureProbConsistent(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaPPM, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	viaProb, err := an.LifetimeAtFailureProb(1e-5, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(viaPPM, viaProb, 1e-9) {
		t.Errorf("LifetimePPM %v vs LifetimeAtFailureProb %v", viaPPM, viaProb)
	}
}

func TestVoltageAccelerationThroughFacade(t *testing.T) {
	// Raising VDD must shorten the predicted lifetime (the knob the
	// voltage_sweep example turns).
	cfgLo := fastConfig()
	cfgHi := fastConfig()
	cfgHi.VDD = 1.32
	anLo, err := obdrel.NewAnalyzer(obdrel.C1(), cfgLo)
	if err != nil {
		t.Fatal(err)
	}
	anHi, err := obdrel.NewAnalyzer(obdrel.C1(), cfgHi)
	if err != nil {
		t.Fatal(err)
	}
	tLo, err := anLo.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	tHi, err := anHi.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !(tHi < tLo/3) {
		t.Errorf("10%% overdrive: lifetime %v → %v, expected a strong reduction", tLo, tHi)
	}
}

func TestDesignAccessorRoundTrip(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C6(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := an.Design()
	if d.Name != "C6" || len(d.Blocks) != 15 || d.TotalDevices() != 840_000 {
		t.Errorf("Design() round trip lost data: %s, %d blocks, %d devices",
			d.Name, len(d.Blocks), d.TotalDevices())
	}
}

func TestClassStrings(t *testing.T) {
	names := map[obdrel.Class]string{
		obdrel.Cache: "cache", obdrel.RegFile: "regfile", obdrel.Control: "control",
		obdrel.ALU: "alu", obdrel.FPU: "fpu", obdrel.Queue: "queue",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("Class %d = %q, want %q", int(c), got, want)
		}
	}
}
