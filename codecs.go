package obdrel

import (
	"errors"
	"sort"

	"obdrel/internal/artifact"
	"obdrel/internal/blod"
	"obdrel/internal/core"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/linalg"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// This file registers the artifact codec of every analysis stage, in
// the package that owns the artifact types (the weibull artifact is
// unexported, so registration cannot live anywhere else). Payloads
// are flat little-endian field dumps via artifact.Writer/Reader:
// floats travel as IEEE-754 bit patterns, so Decode(Encode(v)) is
// bit-identical and a peer-filled or disk-loaded artifact answers
// queries exactly like the locally built one.
//
// Invariants the codecs rely on:
//   - every stage artifact is immutable after its build (the stage
//     cache contract), so encoding never races a writer;
//   - the fingerprint key already versions the *inputs*; the codec
//     only needs to version the *layout*, which the container's
//     format version covers.
//
// A reflection-guarded test (codecs_test.go) pins that every stage in
// StageNames() has a codec, so a new stage cannot silently become
// non-spillable.

func init() {
	artifact.Register(StageFloorplan, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			fd, ok := v.(*floorplan.Design)
			if !ok {
				return nil, errCodecType(StageFloorplan, v)
			}
			var w artifact.Writer
			encFloorplan(&w, fd)
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			fd := decFloorplan(r)
			if err := r.Close(); err != nil {
				return nil, err
			}
			return fd, nil
		},
	})
	artifact.Register(StagePowerMap, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			pm, ok := v.(*power.Model)
			if !ok {
				return nil, errCodecType(StagePowerMap, v)
			}
			var w artifact.Writer
			encPower(&w, pm)
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			pm := decPower(r)
			if err := r.Close(); err != nil {
				return nil, err
			}
			return pm, nil
		},
	})
	artifact.Register(StageThermal, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			cr, ok := v.(*thermal.CoupledResult)
			if !ok {
				return nil, errCodecType(StageThermal, v)
			}
			var w artifact.Writer
			w.Bool(cr.Field != nil)
			if cr.Field != nil {
				w.Int(cr.Field.Nx)
				w.Int(cr.Field.Ny)
				w.F64(cr.Field.W)
				w.F64(cr.Field.H)
				w.F64s(cr.Field.Temps)
				w.Int(cr.Field.Iterations)
			}
			w.F64s(cr.BlockMean)
			w.F64s(cr.BlockMax)
			w.F64s(cr.Powers)
			w.Int(cr.Rounds)
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			cr := &thermal.CoupledResult{}
			if r.Bool() {
				cr.Field = &thermal.Field{
					Nx: r.Int(), Ny: r.Int(),
					W: r.F64(), H: r.F64(),
					Temps: r.F64s(), Iterations: r.Int(),
				}
			}
			cr.BlockMean = r.F64s()
			cr.BlockMax = r.F64s()
			cr.Powers = r.F64s()
			cr.Rounds = r.Int()
			if err := r.Close(); err != nil {
				return nil, err
			}
			return cr, nil
		},
	})
	artifact.Register(StageCovariance, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			m, ok := v.(*grid.Model)
			if !ok {
				return nil, errCodecType(StageCovariance, v)
			}
			var w artifact.Writer
			encGridModel(&w, m)
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			m := decGridModel(r)
			if err := r.Close(); err != nil {
				return nil, err
			}
			return m, nil
		},
	})
	artifact.Register(StagePCA, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			pca, ok := v.(*grid.PCA)
			if !ok {
				return nil, errCodecType(StagePCA, v)
			}
			var w artifact.Writer
			w.Bool(pca.Loadings != nil)
			if pca.Loadings != nil {
				w.Int(pca.Loadings.Rows)
				w.Int(pca.Loadings.Cols)
				w.F64s(pca.Loadings.Data)
			}
			w.F64s(pca.Eigenvalues)
			w.Int(pca.K)
			w.F64(pca.TotalVariance)
			w.F64(pca.CapturedVariance)
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			pca := &grid.PCA{}
			if r.Bool() {
				pca.Loadings = &linalg.Matrix{
					Rows: r.Int(), Cols: r.Int(), Data: r.F64s(),
				}
				if pca.Loadings.Rows < 0 || pca.Loadings.Cols < 0 ||
					pca.Loadings.Rows*pca.Loadings.Cols != len(pca.Loadings.Data) {
					return nil, errors.New("obdrel: pca artifact: loadings shape mismatch")
				}
			}
			pca.Eigenvalues = r.F64s()
			pca.K = r.Int()
			pca.TotalVariance = r.F64()
			pca.CapturedVariance = r.F64()
			if err := r.Close(); err != nil {
				return nil, err
			}
			return pca, nil
		},
	})
	artifact.Register(StageBLOD, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			ch, ok := v.(*blod.Characterization)
			if !ok {
				return nil, errCodecType(StageBLOD, v)
			}
			var w artifact.Writer
			encBlod(&w, ch)
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			ch := decBlod(r)
			if err := r.Close(); err != nil {
				return nil, err
			}
			return ch, nil
		},
	})
	artifact.Register(StageWeibull, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			wa, ok := v.(*weibullArtifact)
			if !ok {
				return nil, errCodecType(StageWeibull, v)
			}
			var w artifact.Writer
			encObdParams(&w, wa.params)
			w.Bool(wa.ext != nil)
			if wa.ext != nil {
				w.Int(len(wa.ext))
				for _, e := range wa.ext {
					w.F64(e.AlphaE)
					w.F64(e.BetaE)
					w.F64(e.DefectFraction)
				}
			}
			w.Int(len(wa.info))
			for _, bi := range wa.info {
				w.String(bi.Name)
				w.F64(bi.MeanTempC)
				w.F64(bi.MaxTempC)
				w.F64(bi.PowerW)
				w.F64(bi.Alpha)
				w.F64(bi.B)
				w.Int(bi.Devices)
			}
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			wa := &weibullArtifact{params: decObdParams(r)}
			if r.Bool() {
				wa.ext = make([]obd.ExtrinsicParams, boundedLen(r, 24))
				for i := range wa.ext {
					wa.ext[i] = obd.ExtrinsicParams{
						AlphaE: r.F64(), BetaE: r.F64(), DefectFraction: r.F64(),
					}
				}
			}
			n := boundedLen(r, 8)
			wa.info = make([]BlockInfo, n)
			for i := range wa.info {
				wa.info[i] = BlockInfo{
					Name:      r.String(),
					MeanTempC: r.F64(),
					MaxTempC:  r.F64(),
					PowerW:    r.F64(),
					Alpha:     r.F64(),
					B:         r.F64(),
					Devices:   r.Int(),
				}
			}
			if err := r.Close(); err != nil {
				return nil, err
			}
			return wa, nil
		},
	})
	artifact.Register(StageChip, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			chip, ok := v.(*core.Chip)
			if !ok {
				return nil, errCodecType(StageChip, v)
			}
			var w artifact.Writer
			encFloorplan(&w, chip.Design)
			encGridModel(&w, chip.Model)
			encBlod(&w, chip.Char)
			encObdParams(&w, chip.Params)
			w.Bool(chip.Extrinsic != nil)
			if chip.Extrinsic != nil {
				w.Int(len(chip.Extrinsic))
				for _, e := range chip.Extrinsic {
					w.F64(e.AlphaE)
					w.F64(e.BetaE)
					w.F64(e.DefectFraction)
				}
			}
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			fd := decFloorplan(r)
			m := decGridModel(r)
			ch := decBlod(r)
			params := decObdParams(r)
			var ext []obd.ExtrinsicParams
			if r.Bool() {
				ext = make([]obd.ExtrinsicParams, boundedLen(r, 24))
				for i := range ext {
					ext[i] = obd.ExtrinsicParams{
						AlphaE: r.F64(), BetaE: r.F64(), DefectFraction: r.F64(),
					}
				}
			}
			if err := r.Close(); err != nil {
				return nil, err
			}
			// Reassemble through the real constructor so a decoded chip
			// passes the exact validation a built one does — a corrupt
			// but checksum-valid payload cannot smuggle in an
			// inconsistent chip.
			chip, err := core.NewChip(fd, m, ch, params)
			if err != nil {
				return nil, err
			}
			if ext != nil {
				if err := chip.SetExtrinsic(ext); err != nil {
					return nil, err
				}
			}
			return chip, nil
		},
	})
}

func errCodecType(stage string, v any) error {
	return errors.New("obdrel: " + stage + " codec: unexpected artifact type")
}

// boundedLen reads a count written by Writer.Int and bounds it by the
// bytes actually remaining (elemSize is the minimum encoded size of
// one element), so hostile counts fail instead of allocating.
func boundedLen(r *artifact.Reader, elemSize int) int {
	n := r.Int()
	if n < 0 || n > len(r.Rest())/elemSize {
		r.Fail("count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

func encFloorplan(w *artifact.Writer, fd *floorplan.Design) {
	w.Bool(fd != nil)
	if fd == nil {
		return
	}
	w.String(fd.Name)
	w.F64(fd.W)
	w.F64(fd.H)
	w.Int(len(fd.Blocks))
	for i := range fd.Blocks {
		b := &fd.Blocks[i]
		w.String(b.Name)
		w.F64(b.X)
		w.F64(b.Y)
		w.F64(b.W)
		w.F64(b.H)
		w.Int(b.Devices)
		w.Int(int(b.Class))
		w.F64(b.Activity)
	}
}

func decFloorplan(r *artifact.Reader) *floorplan.Design {
	if !r.Bool() {
		return nil
	}
	fd := &floorplan.Design{
		Name: r.String(),
		W:    r.F64(),
		H:    r.F64(),
	}
	n := boundedLen(r, 8)
	fd.Blocks = make([]floorplan.Block, n)
	for i := range fd.Blocks {
		fd.Blocks[i] = floorplan.Block{
			Name: r.String(),
			X:    r.F64(), Y: r.F64(), W: r.F64(), H: r.F64(),
			Devices:  r.Int(),
			Class:    floorplan.Class(r.Int()),
			Activity: r.F64(),
		}
	}
	return fd
}

func encPower(w *artifact.Writer, pm *power.Model) {
	w.Bool(pm != nil)
	if pm == nil {
		return
	}
	w.F64(pm.VNom)
	w.F64(pm.LeakDensity0)
	w.F64(pm.LeakTCoeff)
	w.F64(pm.TRef)
	// Maps have no iteration order; sort by class so the encoding —
	// and therefore the sealed checksum — is canonical.
	w.Bool(pm.DynDensity != nil)
	classes := make([]int, 0, len(pm.DynDensity))
	for c := range pm.DynDensity {
		classes = append(classes, int(c))
	}
	sort.Ints(classes)
	w.Int(len(classes))
	for _, c := range classes {
		w.Int(c)
		w.F64(pm.DynDensity[floorplan.Class(c)])
	}
}

func decPower(r *artifact.Reader) *power.Model {
	if !r.Bool() {
		return nil
	}
	pm := &power.Model{
		VNom:         r.F64(),
		LeakDensity0: r.F64(),
		LeakTCoeff:   r.F64(),
		TRef:         r.F64(),
	}
	hasMap := r.Bool()
	n := boundedLen(r, 16)
	if hasMap {
		pm.DynDensity = make(map[floorplan.Class]float64, n)
	}
	for i := 0; i < n; i++ {
		c := floorplan.Class(r.Int())
		v := r.F64()
		if pm.DynDensity != nil {
			pm.DynDensity[c] = v
		}
	}
	return pm
}

func encGridModel(w *artifact.Writer, m *grid.Model) {
	w.Bool(m != nil)
	if m == nil {
		return
	}
	w.F64(m.U0)
	w.F64(m.W)
	w.F64(m.H)
	w.Int(m.Nx)
	w.Int(m.Ny)
	w.F64(m.SigmaG)
	w.F64(m.SigmaS)
	w.F64(m.SigmaE)
	w.F64(m.RhoDist)
	w.Int(int(m.Structure))
	w.Int(m.QTLevels)
	w.F64(m.QTDecay)
	w.Bool(m.Pattern != nil)
	if m.Pattern != nil {
		w.F64(m.Pattern.DieX)
		w.F64(m.Pattern.DieY)
		w.F64(m.Pattern.DieSpan)
		w.F64(m.Pattern.Bowl)
		w.F64(m.Pattern.SlantX)
		w.F64(m.Pattern.SlantY)
	}
}

func decGridModel(r *artifact.Reader) *grid.Model {
	if !r.Bool() {
		return nil
	}
	m := &grid.Model{
		U0: r.F64(), W: r.F64(), H: r.F64(),
		Nx: r.Int(), Ny: r.Int(),
		SigmaG: r.F64(), SigmaS: r.F64(), SigmaE: r.F64(),
		RhoDist:   r.F64(),
		Structure: grid.Structure(r.Int()),
		QTLevels:  r.Int(),
		QTDecay:   r.F64(),
	}
	if r.Bool() {
		m.Pattern = &grid.WaferPattern{
			DieX: r.F64(), DieY: r.F64(), DieSpan: r.F64(),
			Bowl: r.F64(), SlantX: r.F64(), SlantY: r.F64(),
		}
	}
	return m
}

func encBlod(w *artifact.Writer, ch *blod.Characterization) {
	w.Bool(ch != nil)
	if ch == nil {
		return
	}
	w.Int(len(ch.Blocks))
	for i := range ch.Blocks {
		b := &ch.Blocks[i]
		w.String(b.Name)
		w.F64(b.MJ)
		w.F64(b.AJ)
		w.F64(b.U0)
		w.F64(b.USigma)
		w.F64(b.V0)
		w.F64(b.TrB)
		w.F64(b.TrB2)
		w.F64(b.AHat)
		w.F64(b.BHat)
		w.Bool(b.Degenerate)
		w.Ints(b.Grids)
		w.F64s(b.Weights)
		w.F64s(b.NomOff)
	}
	encGridModel(w, ch.Model)
}

func decBlod(r *artifact.Reader) *blod.Characterization {
	if !r.Bool() {
		return nil
	}
	ch := &blod.Characterization{}
	n := boundedLen(r, 8)
	ch.Blocks = make([]blod.BlockChar, n)
	for i := range ch.Blocks {
		ch.Blocks[i] = blod.BlockChar{
			Name: r.String(),
			MJ:   r.F64(), AJ: r.F64(), U0: r.F64(), USigma: r.F64(),
			V0: r.F64(), TrB: r.F64(), TrB2: r.F64(),
			AHat: r.F64(), BHat: r.F64(),
			Degenerate: r.Bool(),
			Grids:      r.Ints(),
			Weights:    r.F64s(),
			NomOff:     r.F64s(),
		}
	}
	ch.Model = decGridModel(r)
	return ch
}

func encObdParams(w *artifact.Writer, ps []obd.Params) {
	w.Bool(ps != nil)
	w.Int(len(ps))
	for _, p := range ps {
		w.F64(p.Alpha)
		w.F64(p.B)
	}
}

func decObdParams(r *artifact.Reader) []obd.Params {
	present := r.Bool()
	n := boundedLen(r, 16)
	if !present {
		return nil
	}
	ps := make([]obd.Params, n)
	for i := range ps {
		ps[i] = obd.Params{Alpha: r.F64(), B: r.F64()}
	}
	return ps
}
