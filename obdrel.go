// Package obdrel is a process-variation and temperature-aware
// full-chip gate-oxide-breakdown (OBD) reliability analyzer — a Go
// reproduction of Zhuo, Chopra, Sylvester and Blaauw, "Process
// Variation and Temperature-Aware Full Chip Oxide Breakdown
// Reliability Analysis" (IEEE TCAD 2011; DATE 2010).
//
// The analyzer models every device's oxide thickness as a random
// variable with inter-die, spatially correlated intra-die, and
// independent components, derives each functional block's
// thickness-population statistics (the BLOD — block-level oxide
// distribution), couples them with temperature-dependent Weibull
// breakdown parameters from a built-in power/thermal simulation, and
// computes the chip-ensemble reliability function R(t) and
// n-per-million lifetimes with five interchangeable methods:
//
//   - MethodStFast — the paper's proposed statistical analysis
//     (marginal-PDF double integrals; Eq. 28), device-count
//     independent and accurate to ~1% of Monte Carlo.
//   - MethodStMC — same projection, but the per-block joint
//     (mean, variance) PDF is built numerically from samples.
//   - MethodHybrid — table-lookup acceleration (Section IV-E),
//     another 2+ orders of magnitude faster per query.
//   - MethodGuard — the traditional guard-band bound (worst
//     temperature, minimum thickness), ~50% pessimistic.
//   - MethodMC — the device-level Monte-Carlo reference.
//
// A temperature-unaware variant (MethodTempUnaware) reproduces the
// Fig. 10 comparison.
//
// # Quick start
//
//	an, err := obdrel.NewAnalyzer(obdrel.C6(), obdrel.DefaultConfig())
//	if err != nil { ... }
//	life, err := an.LifetimePPM(10, obdrel.MethodStFast) // 10-per-million lifetime, hours
//
// All times are in hours, temperatures in °C, thicknesses in nm, and
// chip geometry in a normalized unit where the benchmark dies are
// 1×1.
//
// # Observability
//
// Every context-aware entry point (NewAnalyzerCtx, MaxVDDFromCtx, the
// stage cache) is instrumented with internal/obs spans: when the
// caller's context carries an active trace, stage lookups record
// hit/miss/coalesced provenance and build durations, the thermal
// solver reports SOR sweep counts and residuals, and MaxVDD searches
// report every bisection probe. When the context is untraced — the
// default for library use — the instrumentation is a nil check with
// zero allocations, so batch callers pay nothing. The serving layer
// (internal/server, cmd/obdreld) opens the traces and surfaces them
// via /debug/traces and the ?explain=1 query flag.
//
// # Robustness
//
// The same entry points carry internal/fault injection points
// (pipeline.build, thermal.solve, maxvdd.probe) and a typed failure
// taxonomy: build errors surface wrapped with stage + fingerprint
// provenance and classified Transient, Permanent, Cancelled or
// Overload. The stage cache can retry Transient failures with bounded
// exponential backoff and shed deterministically failing fingerprints
// through a per-key circuit breaker (pipeline.Cache.SetRetry /
// SetBreaker — both off by default for library use). With nothing
// armed, every injection point is a single atomic load and zero
// allocations, so the fault framework is free in production. See
// DESIGN.md §11 and the chaos harness in cmd/loadgen.
package obdrel

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// Class categorizes a functional block for the power model.
type Class int

// Block classes.
const (
	Cache Class = iota
	RegFile
	Control
	ALU
	FPU
	Queue
)

// String implements fmt.Stringer.
func (c Class) String() string { return c.internal().String() }

func (c Class) internal() floorplan.Class {
	switch c {
	case Cache:
		return floorplan.ClassCache
	case RegFile:
		return floorplan.ClassRegFile
	case Control:
		return floorplan.ClassControl
	case ALU:
		return floorplan.ClassALU
	case FPU:
		return floorplan.ClassFPU
	case Queue:
		return floorplan.ClassQueue
	}
	return floorplan.ClassControl
}

func fromInternalClass(c floorplan.Class) Class {
	switch c {
	case floorplan.ClassCache:
		return Cache
	case floorplan.ClassRegFile:
		return RegFile
	case floorplan.ClassControl:
		return Control
	case floorplan.ClassALU:
		return ALU
	case floorplan.ClassFPU:
		return FPU
	case floorplan.ClassQueue:
		return Queue
	}
	return Control
}

// Block is one rectangular functional block: the temperature-uniform
// unit of the analysis. Devices counts gate oxides; Activity in
// [0, 1] drives the power model.
type Block struct {
	Name       string
	X, Y, W, H float64
	Devices    int
	Class      Class
	Activity   float64
}

// Design is a full chip floorplan.
type Design struct {
	Name   string
	W, H   float64
	Blocks []Block
}

// TotalDevices returns the design's device count.
func (d *Design) TotalDevices() int {
	n := 0
	for i := range d.Blocks {
		n += d.Blocks[i].Devices
	}
	return n
}

// Validate checks the design's geometric and structural consistency.
func (d *Design) Validate() error {
	_, err := d.internal()
	return err
}

// errNilDesign is returned for a nil *Design — checked before the
// stage graph touches the design's fingerprint.
var errNilDesign = errors.New("obdrel: nil design")

func (d *Design) internal() (*floorplan.Design, error) {
	if d == nil {
		return nil, errNilDesign
	}
	fd := &floorplan.Design{Name: d.Name, W: d.W, H: d.H}
	for _, b := range d.Blocks {
		fd.Blocks = append(fd.Blocks, floorplan.Block{
			Name: b.Name, X: b.X, Y: b.Y, W: b.W, H: b.H,
			Devices: b.Devices, Class: b.Class.internal(), Activity: b.Activity,
		})
	}
	if err := fd.Validate(); err != nil {
		return nil, err
	}
	return fd, nil
}

func fromInternalDesign(fd *floorplan.Design) *Design {
	d := &Design{Name: fd.Name, W: fd.W, H: fd.H}
	for _, b := range fd.Blocks {
		d.Blocks = append(d.Blocks, Block{
			Name: b.Name, X: b.X, Y: b.Y, W: b.W, H: b.H,
			Devices: b.Devices, Class: fromInternalClass(b.Class), Activity: b.Activity,
		})
	}
	return d
}

// The six benchmark designs of the paper's evaluation (Table III) and
// the many-core design of Fig. 1(b).

// C1 returns the 50K-device synthetic benchmark.
func C1() *Design { return fromInternalDesign(floorplan.C1()) }

// C2 returns the 80K-device synthetic benchmark.
func C2() *Design { return fromInternalDesign(floorplan.C2()) }

// C3 returns the 0.1M-device synthetic benchmark.
func C3() *Design { return fromInternalDesign(floorplan.C3()) }

// C4 returns the 0.2M-device synthetic benchmark.
func C4() *Design { return fromInternalDesign(floorplan.C4()) }

// C5 returns the 0.5M-device synthetic benchmark.
func C5() *Design { return fromInternalDesign(floorplan.C5()) }

// C6 returns the EV6/alpha-like 0.84M-device processor benchmark with
// 15 functional modules.
func C6() *Design { return fromInternalDesign(floorplan.C6()) }

// Benchmarks returns all six designs in evaluation order.
func Benchmarks() []*Design {
	return []*Design{C1(), C2(), C3(), C4(), C5(), C6()}
}

// ManyCore returns a cores×cores tiled design in the style of the
// Fig. 1(b) thermal profile.
func ManyCore(cores, devicesPerTile int) (*Design, error) {
	fd, err := floorplan.ManyCore(cores, devicesPerTile)
	if err != nil {
		return nil, err
	}
	return fromInternalDesign(fd), nil
}

// Synthetic generates a seeded random design with nBlocks blocks and
// totalDevices devices on a 1×1 die.
func Synthetic(name string, nBlocks, totalDevices int, seed int64) (*Design, error) {
	fd, err := floorplan.Synthetic(name, nBlocks, totalDevices, seed)
	if err != nil {
		return nil, err
	}
	return fromInternalDesign(fd), nil
}

// Config gathers every model parameter. DefaultConfig reproduces the
// paper's Table II setup.
type Config struct {
	// VDD is the supply voltage (V).
	VDD float64
	// SigmaRatio is the total thickness variation as 3σ/u0
	// (Table II: 4%).
	SigmaRatio float64
	// FracGlobal, FracSpatial, FracIndependent split the total
	// variance between inter-die, spatially correlated, and
	// independent components (Table II: 50/25/25).
	FracGlobal, FracSpatial, FracIndependent float64
	// RhoDist is the correlation distance as a fraction of the chip
	// dimension (Section V: 0.5).
	RhoDist float64
	// GridNx, GridNy set the spatial-correlation grid (Section V:
	// 25×25).
	GridNx, GridNy int
	// QuadTree selects the quad-tree correlation structure of [24]
	// instead of the exponential-decay grid model; QuadTreeLevels and
	// QuadTreeDecay configure it (0 selects 3 levels, decay 0.5).
	QuadTree       bool
	QuadTreeLevels int
	QuadTreeDecay  float64
	// WaferPattern optionally adds the deterministic across-wafer
	// systematic thickness component of [21]–[23].
	WaferPattern *grid.WaferPattern
	// PCAKeepFraction truncates principal components at this captured
	// variance (1 keeps everything).
	PCAKeepFraction float64
	// Tech is the device OBD technology; nil selects the calibrated
	// default (2.2 nm, β ≈ 1.32).
	Tech *obd.Tech
	// Extrinsic optionally adds a defect-driven early-failure
	// population (bimodal TDDB, cf. the product-level analysis of
	// [4]); nil analyzes the intrinsic wear-out population only. Use
	// obd.DefaultExtrinsic() for the calibrated defaults.
	Extrinsic *obd.Extrinsic
	// Power and Thermal configure the Wattch-like power model and the
	// HotSpot-like solver; nil selects the calibrated defaults.
	Power   *power.Model
	Thermal *thermal.Solver
	// UseBlockMaxTemp selects the block-level worst-case temperature
	// (the paper's choice) rather than the block mean.
	UseBlockMaxTemp bool
	// PinThermalVDD, when positive, solves the power/thermal fixed
	// point at this reference voltage instead of VDD, while the device
	// Weibull parameters α(T,V)/b(T,V) still use VDD. This is the
	// dynamic-reliability-management approximation of a temperature
	// profile fixed by the cooling design: it makes the thermal stage's
	// fingerprint voltage-independent, so a MaxVDD bisection performs
	// exactly one thermal solve across all probes. Zero (the default)
	// keeps the physical coupling — the field genuinely moves with VDD
	// through dynamic power ∝ V² and leakage ∝ V.
	PinThermalVDD float64
	// L0 is the st_fast integration resolution (0 → library default;
	// the paper uses 10).
	L0 int
	// StMCSamples and StMCBins configure the st_MC engine.
	StMCSamples, StMCBins int
	// MCSamples configures the device-level reference (Section V:
	// 1000).
	MCSamples int
	// HybridNL, HybridNB set the lookup-table resolution (Section
	// IV-E: 100×100).
	HybridNL, HybridNB int
	// GuardSigmas is the guard-band thickness margin in total sigmas
	// (x_min = u0 - GuardSigmas·σ_tot).
	GuardSigmas float64
	// Seed makes every stochastic stage reproducible.
	Seed int64
	// Workers bounds the parallelism of every engine and substrate
	// stage (MC sampling and queries, thermal SOR, st_MC projection,
	// hybrid-table fill, PCA). 0 uses GOMAXPROCS; 1 selects the exact
	// serial legacy paths; any value ≥ 2 produces bit-identical
	// results regardless of the actual count (fixed deterministic
	// reduction plans), differing from the serial paths only within
	// documented floating-point/ordering tolerances.
	Workers int
	// DisablePCACache skips the process-wide covariance/PCA cache and
	// recomputes the eigendecomposition for this analyzer.
	DisablePCACache bool
	// DisableStageCache bypasses the process-wide stage-artifact cache
	// (see Stages): every substrate stage rebuilds for this analyzer.
	// Like Workers and DisablePCACache it is a performance knob,
	// excluded from fingerprints; tests set it (together with
	// DisablePCACache) to isolate runs from shared state.
	DisableStageCache bool
	// TableDir, when non-empty, spills the hybrid engine's per-block
	// lookup tables to versioned, checksummed files in this directory
	// on first build and serves later builds straight from a shared
	// read-only mapping (mmap on Linux; see internal/tablefile). Files
	// are keyed by the chip-stage fingerprint plus the table geometry,
	// so a stale or foreign file is never served — it is rejected and
	// rebuilt in place. Like Workers it is a performance knob, excluded
	// from fingerprints: where the tables come from does not change a
	// single query result.
	TableDir string
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() *Config {
	return &Config{
		VDD:             1.2,
		SigmaRatio:      0.04,
		FracGlobal:      0.50,
		FracSpatial:     0.25,
		FracIndependent: 0.25,
		RhoDist:         0.5,
		GridNx:          25,
		GridNy:          25,
		PCAKeepFraction: 1.0,
		UseBlockMaxTemp: true,
		StMCSamples:     5000,
		StMCBins:        40,
		MCSamples:       1000,
		GuardSigmas:     3,
		Seed:            1,
	}
}

// Validate checks the configuration. Every numeric knob is checked
// for finiteness and range so that garbage input — in particular
// untrusted values arriving over the obdreld HTTP API — fails here
// with a descriptive error instead of NaN-poisoning the analysis.
func (c *Config) Validate() error {
	switch {
	case c == nil:
		return errors.New("obdrel: nil config")
	case !(c.VDD > 0) || math.IsInf(c.VDD, 0):
		return fmt.Errorf("obdrel: VDD must be positive and finite, got %v", c.VDD)
	case !(c.SigmaRatio > 0) || c.SigmaRatio >= 1:
		return fmt.Errorf("obdrel: SigmaRatio must be in (0,1), got %v", c.SigmaRatio)
	case !(c.FracGlobal >= 0) || !(c.FracSpatial >= 0) || !(c.FracIndependent >= 0) ||
		math.IsInf(c.FracGlobal, 0) || math.IsInf(c.FracSpatial, 0) || math.IsInf(c.FracIndependent, 0):
		return fmt.Errorf("obdrel: variance fractions must be non-negative and finite, got %v/%v/%v",
			c.FracGlobal, c.FracSpatial, c.FracIndependent)
	case c.GridNx <= 0 || c.GridNy <= 0:
		return fmt.Errorf("obdrel: correlation grid must be positive, got %d×%d", c.GridNx, c.GridNy)
	case !(c.RhoDist > 0) || math.IsInf(c.RhoDist, 0):
		return fmt.Errorf("obdrel: RhoDist must be positive and finite, got %v", c.RhoDist)
	case c.QuadTreeLevels < 0:
		return fmt.Errorf("obdrel: QuadTreeLevels must be non-negative, got %d", c.QuadTreeLevels)
	case c.QuadTreeDecay < 0 || math.IsInf(c.QuadTreeDecay, 0) || math.IsNaN(c.QuadTreeDecay):
		return fmt.Errorf("obdrel: QuadTreeDecay must be non-negative and finite, got %v", c.QuadTreeDecay)
	case c.PCAKeepFraction < 0 || c.PCAKeepFraction > 1 || math.IsNaN(c.PCAKeepFraction):
		return fmt.Errorf("obdrel: PCAKeepFraction must be in [0,1], got %v", c.PCAKeepFraction)
	case c.L0 < 0:
		return fmt.Errorf("obdrel: L0 must be non-negative, got %d", c.L0)
	case c.StMCSamples < 0 || c.StMCBins < 0:
		return fmt.Errorf("obdrel: st_MC sampling must be non-negative, got %d samples × %d bins",
			c.StMCSamples, c.StMCBins)
	case c.MCSamples < 0:
		return fmt.Errorf("obdrel: MCSamples must be non-negative, got %d", c.MCSamples)
	case c.HybridNL < 0 || c.HybridNB < 0:
		return fmt.Errorf("obdrel: hybrid table resolution must be non-negative, got %d×%d",
			c.HybridNL, c.HybridNB)
	case !(c.GuardSigmas >= 0) || math.IsInf(c.GuardSigmas, 0):
		return fmt.Errorf("obdrel: GuardSigmas must be non-negative and finite, got %v", c.GuardSigmas)
	case c.Workers < 0:
		return fmt.Errorf("obdrel: Workers must be non-negative, got %v", c.Workers)
	case c.PinThermalVDD < 0 || math.IsInf(c.PinThermalVDD, 0) || math.IsNaN(c.PinThermalVDD):
		return fmt.Errorf("obdrel: PinThermalVDD must be non-negative and finite, got %v", c.PinThermalVDD)
	}
	return nil
}

// variationModel builds the grid model from the config for a design's
// die.
func (c *Config) variationModel(dieW, dieH float64) (*grid.Model, error) {
	tech := c.Tech
	if tech == nil {
		tech = obd.DefaultTech()
	}
	sigmaTot := tech.U0 * c.SigmaRatio / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, c.FracGlobal, c.FracSpatial, c.FracIndependent)
	if err != nil {
		return nil, err
	}
	m, err := grid.NewModel(tech.U0, dieW, dieH, c.GridNx, c.GridNy, sg, ss, se, c.RhoDist)
	if err != nil {
		return nil, err
	}
	if c.QuadTree {
		m.Structure = grid.StructQuadTree
		m.QTLevels = c.QuadTreeLevels
		m.QTDecay = c.QuadTreeDecay
	}
	m.Pattern = c.WaferPattern
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
